//! The server agent (§IV-D): the only end-host modification TAPS needs.
//!
//! Each sender maintains, per local flow, the deadline `d_j^i`, the
//! expected transmission time `E_j^i` and the allocated slices `A_j^i`;
//! it monitors the clock and transmits at the granted rate exactly inside
//! its slices, then reports `TERM`.
//!
//! Under the unreliable control plane (DESIGN.md §10) the agent also
//! enforces the fail-closed transmission rule: every grant carries an
//! `(epoch, gen)` stamp and a *lease*; the lease is refreshed by any
//! controller message carrying the same stamp (heartbeats, re-grants),
//! and a flow whose lease lapsed transmits nothing until a fresh grant
//! arrives. Stale-stamped grant deliveries (duplicates, reorders) are
//! dropped, making grant application idempotent.

use crate::messages::{FlowGrant, ProbeHeader, ServerMsg};
use std::collections::BTreeMap;

/// Per-flow sender state.
#[derive(Clone, Debug)]
struct LocalFlow {
    /// The scheduling header as originally probed (original size).
    header: ProbeHeader,
    grant: FlowGrant,
    remaining: f64,
    /// Full-rate bytes per second during a slice.
    line_rate: f64,
    terminated: bool,
    /// Data-plane carrier loss: a link on the granted route is down, or
    /// the harness decided the route blackholes. No bytes progress.
    stalled: bool,
    /// The grant is live (transmittable) until this instant; refreshed
    /// by controller messages stamped with the grant's `(epoch, gen)`.
    lease_until: f64,
}

/// A TAPS sender.
#[derive(Clone, Debug)]
pub struct ServerAgent {
    /// Host index this agent runs on.
    host: usize,
    /// Slot duration in seconds — the handshake constant shared with the
    /// controller (grants carry slot *indices* only).
    slot: f64,
    /// Lease duration granted by each controller contact, seconds.
    /// `f64::INFINITY` (the default) disables lease expiry — the
    /// reliable-channel behavior.
    lease: f64,
    /// Ordered map: `advance()` iterates it, and TERM message order must
    /// be deterministic (lint rule L1).
    flows: BTreeMap<usize, LocalFlow>,
}

impl ServerAgent {
    /// Creates the agent for a host. `slot` is the deployment's slot
    /// duration (must equal the controller's `ControllerConfig::slot`).
    pub fn new(host: usize, slot: f64) -> Self {
        ServerAgent {
            host,
            slot,
            lease: f64::INFINITY,
            flows: BTreeMap::new(),
        }
    }

    /// The host index.
    pub fn host(&self) -> usize {
        self.host
    }

    /// The configured slot duration (handshake constant).
    pub fn slot(&self) -> f64 {
        self.slot
    }

    /// Sets the grant lease duration (fail-closed window). Grants and
    /// matching-stamp heartbeats extend the lease by this much.
    pub fn set_lease_duration(&mut self, lease: f64) {
        self.lease = lease;
    }

    /// Builds the probe message for a new task's local flows (Fig. 4
    /// step 2).
    pub fn probe_for(&self, headers: Vec<ProbeHeader>) -> ServerMsg {
        debug_assert!(headers.iter().all(|h| h.src == self.host));
        ServerMsg::Probe(headers)
    }

    /// Accepts a grant from the controller (Fig. 4 step 4B), received at
    /// time `now`. Returns `false` when the grant is *stale* — its
    /// `(epoch, gen)` stamp is older than the one already applied for the
    /// flow — and was dropped (duplicate and reordered deliveries are
    /// harmless). A re-grant for a known flow keeps the local remaining
    /// byte count; only a first grant initializes it from the header.
    pub fn accept_grant(
        &mut self,
        now: f64,
        header: &ProbeHeader,
        grant: FlowGrant,
        line_rate: f64,
    ) -> bool {
        debug_assert_eq!(header.flow, grant.flow, "grant/header flow mismatch");
        let lease_until = now + self.lease;
        match self.flows.get_mut(&grant.flow) {
            Some(f) => {
                if grant.stamp() < f.grant.stamp() {
                    return false; // stale delivery
                }
                f.grant = grant;
                f.header.deadline = header.deadline;
                f.line_rate = line_rate;
                f.lease_until = lease_until;
                true
            }
            None => {
                self.flows.insert(
                    grant.flow,
                    LocalFlow {
                        header: header.clone(),
                        remaining: header.size,
                        grant,
                        line_rate,
                        terminated: false,
                        stalled: false,
                        lease_until,
                    },
                );
                true
            }
        }
    }

    /// Discards local state for a rejected/preempted flow (Fig. 4 step 5).
    pub fn drop_flow(&mut self, flow: usize) {
        self.flows.remove(&flow);
    }

    /// Marks a flow (un)stalled: its route crosses a dead link or
    /// blackholes at a switch, so transmitted bytes make no progress and
    /// the agent holds its remaining count.
    pub fn set_stalled(&mut self, flow: usize, stalled: bool) {
        if let Some(f) = self.flows.get_mut(&flow) {
            f.stalled = stalled;
        }
    }

    /// A controller heartbeat (or any message) carrying stamp
    /// `(epoch, gen)` arrived at `now`: refresh the lease of every local
    /// grant with the *same* stamp. Grants with older stamps are not
    /// refreshed — their leases run out, which fail-closes the flow until
    /// the controller's re-grant arrives.
    pub fn on_heartbeat(&mut self, now: f64, epoch: u64, gen: u64) {
        for f in self.flows.values_mut() {
            if f.grant.stamp() == (epoch, gen) {
                f.lease_until = f.lease_until.max(now + self.lease);
            }
        }
    }

    /// The `(epoch, gen)` stamp of the applied grant for `flow`, if any.
    pub fn grant_stamp(&self, flow: usize) -> Option<(u64, u64)> {
        self.flows.get(&flow).map(|f| f.grant.stamp())
    }

    /// The applied grant of a flow, for harness audits.
    pub fn grant_of(&self, flow: usize) -> Option<&FlowGrant> {
        self.flows.get(&flow).map(|f| &f.grant)
    }

    /// Whether `flow`'s grant lease is live at time `t`.
    pub fn lease_live(&self, flow: usize, t: f64) -> bool {
        // lint: l8-ok(fail-closed lease check: lease_until derives from the same clock, exact expiry at worst withholds one tick)
        self.flows.get(&flow).is_some_and(|f| t <= f.lease_until)
    }

    /// The transmission rate of `flow` at time `t`: line rate inside a
    /// granted slice while the lease is live, zero outside. This is the
    /// §IV-D "monitor the time and send the flow at an assigned rate at
    /// the appropriate time" plus the fail-closed lease rule.
    pub fn rate_at(&self, flow: usize, t: f64) -> f64 {
        let Some(f) = self.flows.get(&flow) else {
            return 0.0;
        };
        // lint: l8-ok(fail-closed lease gate: exact lapse stops transmission, it can never over-send)
        if f.terminated || f.remaining <= 0.0 || f.stalled || t > f.lease_until {
            return 0.0;
        }
        let slot_idx = (t / self.slot).floor().max(0.0) as u64;
        if f.grant.slices.contains(slot_idx) {
            f.line_rate
        } else {
            0.0
        }
    }

    /// Advances the sender's clock by `dt` from time `t`, transmitting
    /// per the granted slices (lease- and stall-gated). Returns any
    /// `TERM` messages to send to the controller (completed flows).
    ///
    /// `dt` must not cross a slot boundary (the harness steps slot by
    /// slot); debug builds assert this.
    pub fn advance(&mut self, t: f64, dt: f64) -> Vec<ServerMsg> {
        let slot = self.slot;
        let mut out = Vec::new();
        for (&fid, f) in self.flows.iter_mut() {
            // lint: l8-ok(fail-closed lease gate: exact lapse stops transmission, it can never over-send)
            if f.terminated || f.remaining <= 0.0 || f.stalled || t > f.lease_until {
                continue;
            }
            debug_assert!(
                ((t / slot).floor() - ((t + dt - 1e-12) / slot).floor()).abs() < 1.0 + 1e-9,
                "advance must not span multiple slots"
            );
            let slot_idx = (t / slot).floor().max(0.0) as u64;
            if f.grant.slices.contains(slot_idx) {
                f.remaining -= f.line_rate * dt;
                if f.remaining <= 0.5 {
                    f.remaining = 0.0;
                    f.terminated = true;
                    out.push(ServerMsg::Term { flow: fid });
                }
            }
        }
        out
    }

    /// Bytes still to send for a flow (0 when done or unknown).
    pub fn remaining(&self, flow: usize) -> f64 {
        self.flows.get(&flow).map_or(0.0, |f| f.remaining)
    }

    /// Whether the flow missed its deadline at time `t` with bytes left.
    pub fn missed(&self, flow: usize, t: f64) -> bool {
        self.flows
            .get(&flow)
            // lint: l8-ok(deadline-miss audit: both times are slot-aligned values of the same simulated clock, compared exactly)
            .is_some_and(|f| f.remaining > 0.0 && t > f.header.deadline)
    }

    /// The original scheduling header and remaining byte count of every
    /// live local flow — the payload of [`ServerMsg::Resync`] a
    /// failed-over controller re-learns in-flight state from.
    pub fn resync_probes(&self) -> Vec<(ProbeHeader, f64)> {
        self.flows
            .iter()
            .filter(|(_, f)| !f.terminated && f.remaining > 0.0)
            .map(|(_, f)| (f.header.clone(), f.remaining))
            .collect()
    }

    /// `(flow, bytes delivered)` for every live local flow — the payload
    /// of the advisory [`ServerMsg::Progress`] report.
    pub fn progress_report(&self) -> Vec<(usize, f64)> {
        self.flows
            .iter()
            .filter(|(_, f)| !f.terminated && f.remaining > 0.0)
            .map(|(&fid, f)| (fid, (f.header.size - f.remaining).max(0.0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taps_timeline::IntervalSet;
    use taps_topology::Path;

    fn grant(flow: usize, slices: &[(u64, u64)]) -> FlowGrant {
        stamped_grant(flow, slices, 0, 0)
    }

    fn stamped_grant(flow: usize, slices: &[(u64, u64)], epoch: u64, gen: u64) -> FlowGrant {
        let mut s = IntervalSet::new();
        for &(a, b) in slices {
            s.insert_range(a, b);
        }
        FlowGrant {
            flow,
            slices: s,
            path: Path::default(),
            epoch,
            gen,
        }
    }

    fn header(flow: usize, size: f64, deadline: f64) -> ProbeHeader {
        ProbeHeader {
            task: 0,
            flow,
            src: 0,
            dst: 1,
            size,
            deadline,
        }
    }

    #[test]
    fn sends_only_inside_slices() {
        let mut a = ServerAgent::new(0, 1.0);
        a.accept_grant(0.0, &header(1, 1000.0, 10.0), grant(1, &[(2, 4)]), 1000.0);
        assert_eq!(a.rate_at(1, 0.5), 0.0);
        assert_eq!(a.rate_at(1, 2.5), 1000.0);
        assert_eq!(a.rate_at(1, 4.1), 0.0);
    }

    #[test]
    fn advance_transmits_and_terms() {
        let mut a = ServerAgent::new(0, 1.0);
        a.accept_grant(0.0, &header(1, 1500.0, 10.0), grant(1, &[(0, 2)]), 1000.0);
        assert!(a.advance(0.0, 1.0).is_empty());
        assert!((a.remaining(1) - 500.0).abs() < 1e-9);
        let msgs = a.advance(1.0, 1.0);
        assert_eq!(msgs, vec![ServerMsg::Term { flow: 1 }]);
        assert_eq!(a.remaining(1), 0.0);
        // No double TERM.
        assert!(a.advance(2.0, 1.0).is_empty());
    }

    #[test]
    fn missed_detection() {
        let mut a = ServerAgent::new(0, 1.0);
        a.accept_grant(0.0, &header(1, 1000.0, 2.0), grant(1, &[(5, 6)]), 1000.0);
        assert!(!a.missed(1, 1.0));
        assert!(a.missed(1, 2.5));
    }

    #[test]
    fn drop_flow_silences_it() {
        let mut a = ServerAgent::new(3, 1.0);
        a.accept_grant(0.0, &header(7, 100.0, 1.0), grant(7, &[(0, 1)]), 1000.0);
        a.drop_flow(7);
        assert_eq!(a.rate_at(7, 0.5), 0.0);
        assert!(a.advance(0.0, 1.0).is_empty());
    }

    #[test]
    fn stale_grant_is_dropped_fresh_is_applied() {
        let mut a = ServerAgent::new(0, 1.0);
        let h = header(1, 1000.0, 10.0);
        assert!(a.accept_grant(0.0, &h, stamped_grant(1, &[(0, 2)], 0, 5), 1000.0));
        // A delayed duplicate of an older generation: ignored.
        assert!(!a.accept_grant(0.0, &h, stamped_grant(1, &[(4, 6)], 0, 3), 1000.0));
        assert_eq!(a.rate_at(1, 0.5), 1000.0);
        assert_eq!(a.rate_at(1, 4.5), 0.0);
        // A same-stamp duplicate re-applies idempotently.
        assert!(a.accept_grant(0.0, &h, stamped_grant(1, &[(0, 2)], 0, 5), 1000.0));
        // A newer generation moves the slices.
        assert!(a.accept_grant(0.0, &h, stamped_grant(1, &[(4, 6)], 1, 0), 1000.0));
        assert_eq!(a.rate_at(1, 0.5), 0.0);
        assert_eq!(a.rate_at(1, 4.5), 1000.0);
    }

    #[test]
    fn regrant_preserves_remaining_bytes() {
        let mut a = ServerAgent::new(0, 1.0);
        let h = header(1, 2000.0, 10.0);
        a.accept_grant(0.0, &h, stamped_grant(1, &[(0, 1)], 0, 1), 1000.0);
        a.advance(0.0, 1.0); // 1000 bytes left
        a.accept_grant(1.0, &h, stamped_grant(1, &[(3, 4)], 0, 2), 1000.0);
        assert!((a.remaining(1) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lease_expiry_fail_closes_and_heartbeat_extends() {
        let mut a = ServerAgent::new(0, 1.0);
        a.set_lease_duration(2.0);
        a.accept_grant(
            0.0,
            &header(1, 9000.0, 20.0),
            stamped_grant(1, &[(0, 9)], 0, 1),
            1000.0,
        );
        assert_eq!(a.rate_at(1, 1.5), 1000.0);
        // Beyond the lease with no contact: fail closed.
        assert_eq!(a.rate_at(1, 2.5), 0.0);
        assert!(a.advance(2.5, 0.5).is_empty());
        // A matching-stamp heartbeat revives it...
        a.on_heartbeat(3.0, 0, 1);
        assert_eq!(a.rate_at(1, 4.0), 1000.0);
        // ...but a newer-stamp heartbeat does not (grant is stale).
        a.on_heartbeat(4.5, 0, 2);
        assert_eq!(a.rate_at(1, 4.9), 1000.0); // still inside old lease
        assert_eq!(a.rate_at(1, 5.1), 0.0); // old lease lapsed, not renewed
    }

    #[test]
    fn stall_holds_bytes() {
        let mut a = ServerAgent::new(0, 1.0);
        a.accept_grant(0.0, &header(1, 2000.0, 10.0), grant(1, &[(0, 4)]), 1000.0);
        a.set_stalled(1, true);
        assert_eq!(a.rate_at(1, 0.5), 0.0);
        assert!(a.advance(0.0, 1.0).is_empty());
        assert!((a.remaining(1) - 2000.0).abs() < 1e-9);
        a.set_stalled(1, false);
        assert_eq!(a.rate_at(1, 1.5), 1000.0);
    }

    #[test]
    fn resync_and_progress_reports() {
        let mut a = ServerAgent::new(0, 1.0);
        a.accept_grant(0.0, &header(1, 2000.0, 10.0), grant(1, &[(0, 2)]), 1000.0);
        a.advance(0.0, 1.0);
        let probes = a.resync_probes();
        assert_eq!(probes.len(), 1);
        assert!((probes[0].0.size - 2000.0).abs() < 1e-9, "original size");
        assert!((probes[0].1 - 1000.0).abs() < 1e-9, "remaining bytes");
        assert_eq!(a.progress_report(), vec![(1, 1000.0)]);
        // Finished flows vanish from both reports.
        a.advance(1.0, 1.0);
        assert!(a.resync_probes().is_empty());
        assert!(a.progress_report().is_empty());
    }
}
