//! The server agent (§IV-D): the only end-host modification TAPS needs.
//!
//! Each sender maintains, per local flow, the deadline `d_j^i`, the
//! expected transmission time `E_j^i` and the allocated slices `A_j^i`;
//! it monitors the clock and transmits at the granted rate exactly inside
//! its slices, then reports `TERM`.

use crate::messages::{FlowGrant, ProbeHeader, ServerMsg};
use std::collections::BTreeMap;

/// Per-flow sender state.
#[derive(Clone, Debug)]
struct LocalFlow {
    grant: FlowGrant,
    deadline: f64,
    remaining: f64,
    /// Full-rate bytes per second during a slice.
    line_rate: f64,
    terminated: bool,
}

/// A TAPS sender.
#[derive(Clone, Debug, Default)]
pub struct ServerAgent {
    /// Host index this agent runs on.
    host: usize,
    /// Ordered map: `advance()` iterates it, and TERM message order must
    /// be deterministic (lint rule L1).
    flows: BTreeMap<usize, LocalFlow>,
}

impl ServerAgent {
    /// Creates the agent for a host.
    pub fn new(host: usize) -> Self {
        ServerAgent {
            host,
            flows: BTreeMap::new(),
        }
    }

    /// The host index.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Builds the probe message for a new task's local flows (Fig. 4
    /// step 2).
    pub fn probe_for(&self, headers: Vec<ProbeHeader>) -> ServerMsg {
        debug_assert!(headers.iter().all(|h| h.src == self.host));
        ServerMsg::Probe(headers)
    }

    /// Accepts a grant from the controller (Fig. 4 step 4B).
    pub fn accept_grant(&mut self, grant: FlowGrant, size: f64, deadline: f64, line_rate: f64) {
        self.flows.insert(
            grant.flow,
            LocalFlow {
                grant,
                deadline,
                remaining: size,
                line_rate,
                terminated: false,
            },
        );
    }

    /// Discards local state for a rejected/preempted flow (Fig. 4 step 5).
    pub fn drop_flow(&mut self, flow: usize) {
        self.flows.remove(&flow);
    }

    /// The transmission rate of `flow` at time `t`: line rate inside a
    /// granted slice, zero outside. This is the §IV-D "monitor the time
    /// and send the flow at an assigned rate at the appropriate time".
    pub fn rate_at(&self, flow: usize, t: f64) -> f64 {
        let Some(f) = self.flows.get(&flow) else {
            return 0.0;
        };
        if f.terminated || f.remaining <= 0.0 {
            return 0.0;
        }
        let slot_idx = (t / f.grant.slot).floor().max(0.0) as u64;
        if f.grant.slices.contains(slot_idx) {
            f.line_rate
        } else {
            0.0
        }
    }

    /// Advances the sender's clock by `dt` from time `t`, transmitting
    /// per the granted slices. Returns any `TERM` messages to send to the
    /// controller (completed flows).
    ///
    /// `dt` must not cross a slot boundary (the harness steps slot by
    /// slot); debug builds assert this.
    pub fn advance(&mut self, t: f64, dt: f64) -> Vec<ServerMsg> {
        let mut out = Vec::new();
        for (&fid, f) in self.flows.iter_mut() {
            if f.terminated || f.remaining <= 0.0 {
                continue;
            }
            debug_assert!(
                ((t / f.grant.slot).floor() - ((t + dt - 1e-12) / f.grant.slot).floor()).abs()
                    < 1.0 + 1e-9,
                "advance must not span multiple slots"
            );
            let slot_idx = (t / f.grant.slot).floor().max(0.0) as u64;
            if f.grant.slices.contains(slot_idx) {
                f.remaining -= f.line_rate * dt;
                if f.remaining <= 0.5 {
                    f.remaining = 0.0;
                    f.terminated = true;
                    out.push(ServerMsg::Term { flow: fid });
                }
            }
        }
        out
    }

    /// Bytes still to send for a flow (0 when done or unknown).
    pub fn remaining(&self, flow: usize) -> f64 {
        self.flows.get(&flow).map_or(0.0, |f| f.remaining)
    }

    /// Whether the flow missed its deadline at time `t` with bytes left.
    pub fn missed(&self, flow: usize, t: f64) -> bool {
        self.flows
            .get(&flow)
            .is_some_and(|f| f.remaining > 0.0 && t > f.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taps_timeline::IntervalSet;
    use taps_topology::Path;

    fn grant(flow: usize, slices: &[(u64, u64)], slot: f64) -> FlowGrant {
        let mut s = IntervalSet::new();
        for &(a, b) in slices {
            s.insert_range(a, b);
        }
        FlowGrant {
            flow,
            slices: s,
            slot,
            path: Path::default(),
        }
    }

    #[test]
    fn sends_only_inside_slices() {
        let mut a = ServerAgent::new(0);
        a.accept_grant(grant(1, &[(2, 4)], 1.0), 1000.0, 10.0, 1000.0);
        assert_eq!(a.rate_at(1, 0.5), 0.0);
        assert_eq!(a.rate_at(1, 2.5), 1000.0);
        assert_eq!(a.rate_at(1, 4.1), 0.0);
    }

    #[test]
    fn advance_transmits_and_terms() {
        let mut a = ServerAgent::new(0);
        a.accept_grant(grant(1, &[(0, 2)], 1.0), 1500.0, 10.0, 1000.0);
        assert!(a.advance(0.0, 1.0).is_empty());
        assert!((a.remaining(1) - 500.0).abs() < 1e-9);
        let msgs = a.advance(1.0, 1.0);
        assert_eq!(msgs, vec![ServerMsg::Term { flow: 1 }]);
        assert_eq!(a.remaining(1), 0.0);
        // No double TERM.
        assert!(a.advance(2.0, 1.0).is_empty());
    }

    #[test]
    fn missed_detection() {
        let mut a = ServerAgent::new(0);
        a.accept_grant(grant(1, &[(5, 6)], 1.0), 1000.0, 2.0, 1000.0);
        assert!(!a.missed(1, 1.0));
        assert!(a.missed(1, 2.5));
    }

    #[test]
    fn drop_flow_silences_it() {
        let mut a = ServerAgent::new(3);
        a.accept_grant(grant(7, &[(0, 1)], 1.0), 100.0, 1.0, 1000.0);
        a.drop_flow(7);
        assert_eq!(a.rate_at(7, 0.5), 0.0);
        assert!(a.advance(0.0, 1.0).is_empty());
    }
}
