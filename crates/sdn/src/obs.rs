//! Trace emission macro for this crate's instrumentation hooks.
//!
//! Lint L6 requires all trace output in lib code to go through this
//! macro (no ad-hoc prints). With the `obs` feature disabled the macro
//! expands to nothing — the sink type is never even named, so the
//! feature-off build cannot reference `taps-obs`.

/// Emits a [`taps_obs::TraceEvent`] variant to `$sink`
/// (an `Option<std::sync::Arc<dyn taps_obs::TraceSink>>`) at simulation
/// time `$t`. A no-op when `$sink` is `None` or the `obs` feature is
/// off.
macro_rules! obs_event {
    ($sink:expr, $t:expr, $variant:ident { $($body:tt)* }) => {
        #[cfg(feature = "obs")]
        {
            if let Some(sink) = ($sink).as_deref() {
                taps_obs::TraceSink::emit(
                    sink,
                    $t,
                    &taps_obs::TraceEvent::$variant { $($body)* },
                );
            }
        }
    };
}

pub(crate) use obs_event;

/// Widens dense `usize` indices/counts to the `u64` wire type used by
/// trace events.
#[cfg(feature = "obs")]
#[inline]
pub(crate) fn obs_id(x: usize) -> u64 {
    x as u64
}

/// Optional trace sink slot embeddable in `derive(Clone, Debug)` structs
/// (trait objects have no `Debug`; this prints only whether it is set).
#[cfg(feature = "obs")]
#[derive(Clone, Default)]
pub(crate) struct TraceHandle(pub(crate) Option<std::sync::Arc<dyn taps_obs::TraceSink>>);

#[cfg(feature = "obs")]
impl TraceHandle {
    /// Mirrors `Option::as_deref` so `obs_event!` works on handles and
    /// plain options alike.
    pub(crate) fn as_deref(&self) -> Option<&dyn taps_obs::TraceSink> {
        self.0.as_deref()
    }
}

#[cfg(feature = "obs")]
impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceHandle(set: {})", self.0.is_some())
    }
}
