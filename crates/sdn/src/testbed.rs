//! A closed-loop testbed harness: the §VI experiment end to end through
//! the control plane.
//!
//! Time advances slot by slot. When a task arrives, its senders probe
//! the controller; grants are pushed to the server agents (including
//! re-issued grants for in-flight flows the re-allocation moved);
//! agents transmit exactly inside their slices; TERMs flow back and the
//! controller withdraws forwarding entries. At every slot the harness
//! *audits the data plane*: each transmitting flow's packets are walked
//! hop by hop through the installed flow tables, and per-link exclusive
//! occupancy is asserted.

use crate::controller::{Controller, ControllerConfig, TaskVerdict};
use crate::messages::{ProbeHeader, ServerMsg};
use crate::obs::obs_event;
#[cfg(feature = "obs")]
use crate::obs::obs_id;
use crate::server::ServerAgent;
use taps_flowsim::Workload;
use taps_topology::Topology;

/// Result of a testbed run.
#[derive(Clone, Debug)]
pub struct TestbedReport {
    /// Flows that delivered all bytes within their deadline.
    pub flows_on_time: usize,
    /// Flows of rejected tasks (never transmitted).
    pub flows_rejected: usize,
    /// Flows that missed their deadline.
    pub flows_missed: usize,
    /// Total flows.
    pub flows_total: usize,
    /// Per-slot bytes delivered by flows that eventually finished on
    /// time (the Fig. 14 "effective" numerator), indexed by slot.
    pub useful_bytes_per_slot: Vec<f64>,
    /// Forwarding audits that failed (must be 0).
    pub forwarding_violations: usize,
    /// Link-exclusivity audits that failed (must be 0).
    pub occupancy_violations: usize,
    /// Admission verdicts in arrival order.
    pub verdicts: Vec<(usize, TaskVerdict)>,
}

/// Runs a workload through the SDN control plane on `topo`.
pub fn run_testbed(
    topo: &Topology,
    wl: &Workload,
    cfg: ControllerConfig,
    horizon: f64,
) -> TestbedReport {
    run_inner(
        topo,
        wl,
        cfg,
        horizon,
        #[cfg(feature = "obs")]
        None,
    )
}

/// [`run_testbed`] with every control-plane decision, commit, and flow
/// lifecycle event recorded into `sink` (DESIGN.md §11).
#[cfg(feature = "obs")]
pub fn run_testbed_traced(
    topo: &Topology,
    wl: &Workload,
    cfg: ControllerConfig,
    horizon: f64,
    sink: std::sync::Arc<dyn taps_obs::TraceSink>,
) -> TestbedReport {
    run_inner(topo, wl, cfg, horizon, Some(sink))
}

fn run_inner(
    topo: &Topology,
    wl: &Workload,
    cfg: ControllerConfig,
    horizon: f64,
    #[cfg(feature = "obs")] trace: Option<std::sync::Arc<dyn taps_obs::TraceSink>>,
) -> TestbedReport {
    let slot = cfg.slot;
    let line_rate = topo
        .uniform_capacity()
        // lint: panic-ok(harness precondition: the testbed topologies are built with uniform capacity)
        .expect("testbed wants uniform links");
    let mut controller = Controller::new(topo, cfg);
    #[cfg(feature = "obs")]
    if let Some(s) = &trace {
        controller.set_trace_sink(s.clone());
    }
    obs_event!(
        &trace,
        0.0,
        RunMeta {
            hosts: obs_id(topo.num_hosts()),
            links: obs_id(topo.num_links()),
            slot
        }
    );
    let mut agents: Vec<ServerAgent> = (0..topo.num_hosts())
        .map(|h| ServerAgent::new(h, slot))
        .collect();
    // Handshake: the slot duration is a shared deployment constant, not
    // carried per grant — assert the two sides agree.
    // lint: l8-ok(exact equality of a copied constant: slot passes through ServerAgent::new unmodified)
    debug_assert!(agents.iter().all(|a| a.slot() == slot));

    let mut verdicts = Vec::new();
    let mut rejected_flows: Vec<bool> = vec![false; wl.num_flows()];
    let mut finished: Vec<Option<f64>> = vec![None; wl.num_flows()];
    let mut next_task = 0usize;
    let nslots = (horizon / slot).ceil() as usize;
    let mut useful = vec![0.0f64; nslots];
    let mut delivered_by_slot: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nslots];
    let mut forwarding_violations = 0usize;
    let mut occupancy_violations = 0usize;

    #[allow(clippy::needless_range_loop)] // `s` also stamps `now` and delivered_by_slot
    for s in 0..nslots {
        let now = s as f64 * slot;

        // --- control plane: probes for tasks arriving by `now` --------
        while next_task < wl.num_tasks() && wl.tasks[next_task].arrival <= now + 1e-9 {
            let t = &wl.tasks[next_task];
            next_task += 1;
            // Senders report progress so the controller re-packs with
            // true remaining sizes.
            for (fid, agent_delivered) in progress(&agents, wl) {
                controller.note_progress(fid, agent_delivered);
            }
            let probes: Vec<ProbeHeader> = t
                .flows
                .clone()
                .map(|fid| {
                    let f = &wl.flows[fid];
                    ProbeHeader {
                        task: t.id,
                        flow: fid,
                        src: f.src,
                        dst: f.dst,
                        size: f.size,
                        deadline: f.deadline,
                    }
                })
                .collect();
            obs_event!(
                &trace,
                now,
                TaskArrived {
                    task: obs_id(t.id),
                    flows: obs_id(probes.len()),
                    deadline: t.deadline
                }
            );
            #[cfg(feature = "obs")]
            for p in &probes {
                obs_event!(
                    &trace,
                    now,
                    FlowSpec {
                        flow: obs_id(p.flow),
                        task: obs_id(p.task),
                        src: obs_id(p.src),
                        dst: obs_id(p.dst),
                        bytes: p.size,
                        deadline: p.deadline
                    }
                );
            }
            let (verdict, grants, _cmds) = controller.handle_probe(now, &probes);
            if matches!(verdict, TaskVerdict::Rejected) {
                for fid in t.flows.clone() {
                    rejected_flows[fid] = true;
                }
            } else {
                for g in grants {
                    let f = &wl.flows[g.flow];
                    let h = header_for(wl, g.flow);
                    agents[f.src].accept_grant(now, &h, g, line_rate);
                }
            }
            // Re-issue grants for every in-flight flow the re-allocation
            // may have moved (the agent keeps its remaining byte count on
            // a re-grant).
            for fid in 0..wl.num_flows() {
                if finished[fid].is_some() || rejected_flows[fid] {
                    continue;
                }
                if let Some(g) = controller.grant_of(fid) {
                    let f = &wl.flows[fid];
                    let h = header_for(wl, fid);
                    agents[f.src].accept_grant(now, &h, g, line_rate);
                }
            }
            verdicts.push((t.id, verdict));
        }

        // --- data-plane audit -----------------------------------------
        let mut busy = vec![usize::MAX; topo.num_links()];
        for fid in 0..wl.num_flows() {
            let f = &wl.flows[fid];
            if agents[f.src].rate_at(fid, now + slot / 2.0) <= 0.0 {
                continue;
            }
            let Some(grant) = controller.grant_of(fid) else {
                continue;
            };
            // Exclusive per-link occupancy within the slot.
            for l in &grant.path.links {
                if busy[l.idx()] != usize::MAX && busy[l.idx()] != fid {
                    occupancy_violations += 1;
                }
                busy[l.idx()] = fid;
            }
            // Walk the installed entries from the first switch to the
            // destination host.
            let mut ok = true;
            for l in &grant.path.links {
                let node = topo.link(*l).src;
                if !topo.node(node).kind.is_switch() {
                    continue; // the sending host needs no entry
                }
                if controller.table(node).forward(fid) != Some(*l) {
                    ok = false;
                }
            }
            if !ok {
                forwarding_violations += 1;
            }
        }

        // --- transmit one slot ------------------------------------------
        for a in agents.iter_mut() {
            let before: Vec<(usize, f64)> = (0..wl.num_flows())
                .filter(|&fid| wl.flows[fid].src == a.host())
                .map(|fid| (fid, a.remaining(fid)))
                .collect();
            let msgs = a.advance(now, slot);
            for (fid, rem_before) in before {
                let delta = rem_before - a.remaining(fid);
                if delta > 0.0 {
                    delivered_by_slot[s].push((fid, delta));
                }
            }
            for m in msgs {
                if let ServerMsg::Term { flow } = m {
                    finished[flow] = Some(now + slot);
                    obs_event!(&trace, now + slot, FlowCompleted { flow: obs_id(flow) });
                    controller.handle_term(now + slot, flow);
                }
            }
        }
    }

    // Classify flows and build the useful-bytes series.
    let mut flows_on_time = 0usize;
    let mut flows_rejected = 0usize;
    let mut flows_missed = 0usize;
    let on_time: Vec<bool> = (0..wl.num_flows())
        .map(|fid| finished[fid].is_some_and(|t| t <= wl.flows[fid].deadline + 1e-9))
        .collect();
    for fid in 0..wl.num_flows() {
        if rejected_flows[fid] {
            flows_rejected += 1;
        } else if on_time[fid] {
            flows_on_time += 1;
        } else {
            flows_missed += 1;
            if finished[fid].is_none() {
                obs_event!(
                    &trace,
                    nslots as f64 * slot,
                    DeadlineExpired { flow: obs_id(fid) }
                );
            }
        }
    }
    for (slot_bytes, entries) in useful.iter_mut().zip(&delivered_by_slot) {
        for (fid, bytes) in entries {
            if on_time[*fid] {
                *slot_bytes += bytes;
            }
        }
    }

    TestbedReport {
        flows_on_time,
        flows_rejected,
        flows_missed,
        flows_total: wl.num_flows(),
        useful_bytes_per_slot: useful,
        forwarding_violations,
        occupancy_violations,
        verdicts,
    }
}

/// Rebuilds the scheduling header of a workload flow (what its sender's
/// probe carried).
fn header_for(wl: &Workload, fid: usize) -> ProbeHeader {
    let f = &wl.flows[fid];
    ProbeHeader {
        task: f.task,
        flow: fid,
        src: f.src,
        dst: f.dst,
        size: f.size,
        deadline: f.deadline,
    }
}

fn progress(agents: &[ServerAgent], wl: &Workload) -> Vec<(usize, f64)> {
    (0..wl.num_flows())
        .map(|fid| {
            let f = &wl.flows[fid];
            let rem = agents[f.src].remaining(fid);
            let delivered = if rem > 0.0 { f.size - rem } else { 0.0 };
            (fid, delivered.max(0.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taps_topology::build::{partial_fat_tree_testbed, GBPS};
    use taps_workload::WorkloadConfig;

    fn testbed_workload(seed: u64, tasks: usize) -> Workload {
        WorkloadConfig {
            num_tasks: tasks,
            mean_flows_per_task: 2.0,
            sd_flows_per_task: 0.0,
            mean_flow_size: 100_000.0,
            sd_flow_size: 25_000.0,
            min_flow_size: 1_000.0,
            mean_deadline: 0.040,
            min_deadline: 0.002,
            arrival_rate: 500.0,
            num_hosts: 8,
            seed,
            size_dist: taps_workload::SizeDist::Normal,
        }
        .generate()
    }

    #[test]
    fn testbed_loop_is_consistent() {
        let topo = partial_fat_tree_testbed(GBPS);
        let wl = testbed_workload(5, 20);
        let horizon = wl.tasks.last().unwrap().deadline + 0.05;
        let rep = run_testbed(&topo, &wl, ControllerConfig::default(), horizon);
        assert_eq!(
            rep.forwarding_violations, 0,
            "installed entries must match grants"
        );
        assert_eq!(rep.occupancy_violations, 0, "one flow per link per slot");
        assert_eq!(
            rep.flows_on_time + rep.flows_rejected + rep.flows_missed,
            rep.flows_total
        );
        // The controller's admission keeps misses near zero: granted
        // flows finish inside their slices (slot-boundary admission can
        // strand at most the tail).
        assert!(
            rep.flows_missed <= rep.flows_total / 10,
            "granted flows should rarely miss: {} of {}",
            rep.flows_missed,
            rep.flows_total
        );
        assert!(rep.flows_on_time > 0);
    }

    #[test]
    fn rejected_tasks_never_transmit_in_testbed() {
        let topo = partial_fat_tree_testbed(GBPS);
        // Overload: large flows under tight deadlines arriving in a
        // burst, so the reject rule must fire.
        let wl = WorkloadConfig {
            num_tasks: 40,
            mean_flows_per_task: 2.0,
            sd_flows_per_task: 0.0,
            mean_flow_size: 1_000_000.0,
            sd_flow_size: 200_000.0,
            min_flow_size: 100_000.0,
            mean_deadline: 0.010,
            min_deadline: 0.002,
            arrival_rate: 3000.0,
            num_hosts: 8,
            seed: 9,
            size_dist: taps_workload::SizeDist::Normal,
        }
        .generate();
        let horizon = wl.tasks.last().unwrap().deadline + 0.05;
        let rep = run_testbed(&topo, &wl, ControllerConfig::default(), horizon);
        assert!(rep.flows_rejected > 0, "overload should cause rejections");
        assert_eq!(rep.occupancy_violations, 0);
        // Useful series is bounded by aggregate capacity per slot.
        let cap_per_slot = GBPS * 0.0001 * topo.num_hosts() as f64;
        for (s, u) in rep.useful_bytes_per_slot.iter().enumerate() {
            assert!(*u <= cap_per_slot + 1.0, "slot {s} over capacity: {u}");
        }
    }

    #[test]
    fn testbed_agrees_with_flowsim_on_task_verdicts() {
        use taps_core::{RejectDecision, Taps};
        use taps_flowsim::{SimConfig, Simulation};
        // The same workload through (a) the SDN control plane and
        // (b) the in-simulator TAPS must produce the same accept/reject
        // pattern (both run Alg. 1 on the same allocator).
        let topo = partial_fat_tree_testbed(GBPS);
        let wl = testbed_workload(13, 15);
        let horizon = wl.tasks.last().unwrap().deadline + 0.05;
        let rep = run_testbed(&topo, &wl, ControllerConfig::default(), horizon);

        let mut taps = Taps::new();
        let _sim = Simulation::new(&topo, &wl, SimConfig::default()).run(&mut taps);
        let sim_rejected: Vec<usize> = taps
            .decisions()
            .iter()
            .filter(|(_, d)| matches!(d, RejectDecision::Reject))
            .map(|(t, _)| *t)
            .collect();
        let tb_rejected: Vec<usize> = rep
            .verdicts
            .iter()
            .filter(|(_, v)| matches!(v, TaskVerdict::Rejected))
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(
            sim_rejected, tb_rejected,
            "control plane and simulator disagree"
        );
    }
}
