//! Property tests for the unreliable control plane (DESIGN.md §10).
//!
//! The core protocol claim is *delivery-order independence*: every
//! controller-originated update carries an `(epoch, gen)` stamp and the
//! receiving agents apply last-writer-wins, so as long as every message
//! is delivered at least once (the reliable sender's job), it does not
//! matter in which order, how late, or how many times the lossy channel
//! delivers them — server grant state and switch flow tables converge to
//! exactly the state of an in-order, lossless run. The sweep floor
//! extends this across a failover: stale pre-sweep commands can never
//! resurrect reconciled-away entries. On top of the agent-level
//! properties, the end-to-end harness must be bit-identically
//! reproducible for *any* channel configuration and seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taps_flowsim::{FaultEvent, FaultKind};
use taps_sdn::{
    run_chaos, ChannelConfig, ChaosConfig, ControllerConfig, FlowEntry, FlowGrant, ProbeHeader,
    ServerAgent, SwitchAgent, SwitchCmd,
};
use taps_timeline::IntervalSet;
use taps_topology::build::{partial_fat_tree_testbed, GBPS};
use taps_topology::{LinkId, NodeId, Path};
use taps_workload::{SizeDist, WorkloadConfig};

/// In-order send sequence → a delivery schedule with duplicates and an
/// arbitrary permutation, but every message present at least once.
/// Mirrors what `ControlChannel` can do to reliably-retransmitted
/// traffic (drops are compensated by retransmission, so "delivered at
/// least once" is the channel+retry contract).
fn scramble<T: Clone>(msgs: &[T], seed: u64, dup_budget: usize) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..msgs.len()).collect();
    for _ in 0..dup_budget {
        let pick = rng.gen_range(0..msgs.len());
        order.push(pick);
    }
    // Fisher-Yates over the index list.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order.into_iter().map(|i| msgs[i].clone()).collect()
}

fn header(flow: usize) -> ProbeHeader {
    ProbeHeader {
        task: 0,
        flow,
        src: 0,
        dst: 1,
        size: 10_000.0,
        deadline: 1.0,
    }
}

fn grant(flow: usize, epoch: u64, gen: u64, slot: u64) -> FlowGrant {
    FlowGrant {
        flow,
        slices: IntervalSet::from_range(slot, slot + 2),
        path: Path {
            links: vec![LinkId(flow as u32)],
        },
        epoch,
        gen,
    }
}

/// Final per-flow grant view of a server: `(stamp, slices)` per flow.
fn server_state(a: &ServerAgent, flows: &[usize]) -> Vec<Option<((u64, u64), IntervalSet)>> {
    flows
        .iter()
        .map(|&f| a.grant_of(f).map(|g| (g.stamp(), g.slices.clone())))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation + duplication of a set of stamped grants leaves a
    /// server in exactly the in-order lossless state.
    #[test]
    fn server_grants_converge_under_any_interleaving(
        seed in any::<u64>(),
        dup_budget in 0usize..12,
        gens_per_flow in 1u64..4,
    ) {
        let flows = [1usize, 2, 3, 4];
        // The controller's send order: generations strictly increase.
        let mut msgs = Vec::new();
        let mut gen = 0u64;
        for g in 0..gens_per_flow {
            for &f in &flows {
                gen += 1;
                msgs.push(grant(f, 0, gen, 10 * g + f as u64));
            }
        }

        let mut reference = ServerAgent::new(0, 0.001);
        for m in &msgs {
            reference.accept_grant(0.0, &header(m.flow), m.clone(), 1e9);
        }

        let mut scrambled = ServerAgent::new(0, 0.001);
        for m in scramble(&msgs, seed, dup_budget) {
            scrambled.accept_grant(0.0, &header(m.flow), m, 1e9);
        }

        prop_assert_eq!(
            server_state(&scrambled, &flows),
            server_state(&reference, &flows)
        );
        for &f in &flows {
            prop_assert_eq!(scrambled.remaining(f), reference.remaining(f));
        }
    }

    /// Any permutation + duplication of a set of stamped switch commands
    /// leaves the flow table in exactly the in-order lossless state.
    #[test]
    fn switch_commands_converge_under_any_interleaving(
        seed in any::<u64>(),
        dup_budget in 0usize..12,
        rounds in 1u64..5,
    ) {
        let node = NodeId(9);
        let flows = [1usize, 2, 3];
        // Send order: per round, withdraw-then-install for each flow
        // (what a commit emits), generations strictly increasing.
        let mut msgs: Vec<(u64, u64, SwitchCmd)> = Vec::new();
        let mut script = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        for r in 0..rounds {
            let gen = r + 1;
            for &f in &flows {
                if script.gen_bool(0.3) {
                    msgs.push((0, gen, SwitchCmd::Withdraw { node, flow: f }));
                } else {
                    msgs.push((0, gen, SwitchCmd::Install {
                        node,
                        flow: f,
                        out_link: LinkId((10 * r + f as u64) as u32),
                    }));
                }
            }
        }

        let mut reference = SwitchAgent::new(node, 64, 64);
        for (e, g, cmd) in &msgs {
            reference.apply(0.0, *e, *g, cmd);
        }

        let mut scrambled = SwitchAgent::new(node, 64, 64);
        for (e, g, cmd) in scramble(&msgs, seed, dup_budget) {
            scrambled.apply(0.0, e, g, &cmd);
        }

        prop_assert_eq!(
            scrambled.table().entries_sorted(),
            reference.table().entries_sorted()
        );
    }

    /// The reconciliation floor: after a sweep, *any* interleaving of
    /// stale pre-sweep commands (including installs for flows the sweep
    /// did not list) leaves the table exactly as the sweep wrote it.
    #[test]
    fn stale_commands_cannot_resurrect_swept_entries(
        seed in any::<u64>(),
        dup_budget in 0usize..12,
    ) {
        let node = NodeId(3);
        let mut pre: Vec<(u64, u64, SwitchCmd)> = Vec::new();
        for f in 1usize..=5 {
            pre.push((0, f as u64, SwitchCmd::Install {
                node,
                flow: f,
                out_link: LinkId(f as u32),
            }));
        }

        // The failed-over controller keeps only flows 2 and 4.
        let kept = vec![
            FlowEntry { flow: 2, out_link: LinkId(20) },
            FlowEntry { flow: 4, out_link: LinkId(40) },
        ];

        let mut agent = SwitchAgent::new(node, 64, 64);
        agent.reconcile(0.0, 1, 0, &kept);
        for (e, g, cmd) in scramble(&pre, seed, dup_budget) {
            prop_assert!(!agent.apply(0.0, e, g, &cmd), "stale command must be dropped");
        }
        prop_assert_eq!(agent.table().entries_sorted(), kept.clone());
    }
}

proptest! {
    // End-to-end runs are expensive; fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any channel configuration and seed, a chaos run is
    /// bit-identically reproducible and never violates the safety
    /// invariants (no grantless transmission, no link-slot conflicts).
    #[test]
    fn chaos_outcome_is_reproducible_for_any_channel(
        seed in any::<u64>(),
        drop_pm in 0u64..300,
        delay_us in 0u64..300,
    ) {
        let topo = partial_fat_tree_testbed(GBPS);
        let wl = WorkloadConfig {
            num_tasks: 8,
            mean_flows_per_task: 2.0,
            sd_flows_per_task: 0.0,
            mean_flow_size: 100_000.0,
            sd_flow_size: 25_000.0,
            min_flow_size: 1_000.0,
            mean_deadline: 0.040,
            min_deadline: 0.002,
            arrival_rate: 500.0,
            num_hosts: 8,
            seed: seed ^ 0xC0FF_EE00,
            size_dist: SizeDist::Normal,
        }
        .generate();
        let horizon = wl.tasks.last().map(|t| t.deadline).unwrap_or(0.05) + 0.05;
        let channel = ChannelConfig::lossy(drop_pm as f64 / 1000.0, delay_us as f64 * 1e-6);
        let cfg = ChaosConfig::unreliable(ControllerConfig::default(), channel, seed, horizon);

        let a = run_chaos(&topo, &wl, &cfg);
        let b = run_chaos(&topo, &wl, &cfg);
        prop_assert_eq!(a.digest, b.digest, "double run must be bit-identical");
        prop_assert_eq!(a.violations(), 0, "safety invariants must hold");
    }

    /// Delta re-allocation under a lossy control plane with mid-run
    /// faults (DESIGN.md §12): the controller serves every admission and
    /// recovery pass through its persistent `DeltaCache`, and in debug
    /// builds `allocate_batch_delta` cross-checks each delta batch
    /// against a fresh full pass (panicking on any divergence) — so this
    /// test failing-by-panic is the delta/full equivalence assertion.
    /// On top of that, the run must stay bit-identically reproducible
    /// and safety-clean even though loss, delay and the fault epoch all
    /// interleave with the cache's translate/probe/fallback ladder.
    #[test]
    fn delta_allocation_survives_lossy_control_plane_with_faults(
        seed in any::<u64>(),
        drop_pm in 0u64..200,
        delay_us in 0u64..200,
        uplink in 0usize..2,
    ) {
        let topo = partial_fat_tree_testbed(GBPS);
        // One edge→aggregation uplink of host 0's rack; every edge
        // switch has two, so the fault degrades but never disconnects.
        let (tor, _) = topo.neighbors(topo.host(0))[0];
        let dead = topo
            .neighbors(tor)
            .iter()
            .filter(|(n, _)| topo.node(*n).level > topo.node(tor).level)
            .map(|(_, l)| *l)
            .nth(uplink)
            .unwrap();
        let wl = WorkloadConfig {
            num_tasks: 8,
            mean_flows_per_task: 2.0,
            sd_flows_per_task: 0.0,
            mean_flow_size: 100_000.0,
            sd_flow_size: 25_000.0,
            min_flow_size: 1_000.0,
            mean_deadline: 0.040,
            min_deadline: 0.002,
            arrival_rate: 500.0,
            num_hosts: 8,
            seed: seed ^ 0xDE17_A000,
            size_dist: SizeDist::Normal,
        }
        .generate();
        let horizon = wl.tasks.last().map(|t| t.deadline).unwrap_or(0.05) + 0.05;
        let channel = ChannelConfig::lossy(drop_pm as f64 / 1000.0, delay_us as f64 * 1e-6);
        let mut cfg = ChaosConfig::unreliable(ControllerConfig::default(), channel, seed, horizon);
        cfg.faults = vec![
            FaultEvent { time: horizon * 0.3, kind: FaultKind::LinkDown(dead) },
            FaultEvent { time: horizon * 0.6, kind: FaultKind::LinkUp(dead) },
        ];

        let a = run_chaos(&topo, &wl, &cfg);
        let b = run_chaos(&topo, &wl, &cfg);
        prop_assert_eq!(a.digest, b.digest, "double run must be bit-identical");
        prop_assert_eq!(a.violations(), 0, "safety invariants must hold");
    }
}
