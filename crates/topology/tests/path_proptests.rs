//! Property tests over randomized topology parameters: every enumerated
//! path must be a simple, connected, valley-free walk; ECMP must stay
//! within the candidate set and be deterministic.

use proptest::prelude::*;
use taps_topology::build::{dumbbell, fat_tree, single_rooted, GBPS};
use taps_topology::cache::PathCache;
use taps_topology::paths::PathFinder;
use taps_topology::{NodeId, Topology};

fn check_path_validity(topo: &Topology, src: NodeId, dst: NodeId, max: usize) {
    let pf = PathFinder::new(topo);
    let paths = pf.paths(src, dst, max);
    assert!(!paths.is_empty(), "connected topology must yield a path");
    for p in &paths {
        let nodes = p.nodes(topo);
        assert_eq!(nodes.first(), Some(&src));
        assert_eq!(nodes.last(), Some(&dst));
        for w in p.links.windows(2) {
            assert_eq!(topo.link(w[0]).dst, topo.link(w[1]).src, "disconnected hop");
        }
        let mut uniq = nodes.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), nodes.len(), "path revisits a node");
        // Valley-free over levels: up phase then down phase.
        let levels: Vec<u8> = nodes.iter().map(|n| topo.node(*n).level).collect();
        let apex = levels.iter().copied().max().unwrap();
        let apex_pos = levels.iter().position(|&l| l == apex).unwrap();
        assert!(
            levels[..=apex_pos].windows(2).all(|w| w[0] < w[1])
                || topo.routing == taps_topology::RoutingMode::ShortestPath,
            "ascent not strictly increasing: {levels:?}"
        );
        assert!(
            levels[apex_pos..].windows(2).all(|w| w[0] > w[1])
                || topo.routing == taps_topology::RoutingMode::ShortestPath,
            "descent not strictly decreasing: {levels:?}"
        );
    }
    // No duplicate paths.
    let mut dedup = paths.clone();
    dedup.sort_by(|a, b| a.links.cmp(&b.links));
    dedup.dedup();
    assert_eq!(dedup.len(), paths.len(), "duplicate paths enumerated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_rooted_paths_are_valid(
        pods in 1usize..5,
        racks in 1usize..5,
        hosts in 1usize..6,
        a in 0usize..200,
        b in 0usize..200,
        max in 1usize..8,
    ) {
        let topo = single_rooted(pods, racks, hosts, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        check_path_validity(&topo, topo.host(a), topo.host(b), max);
        // Trees have exactly one path regardless of the cap.
        let pf = PathFinder::new(&topo);
        prop_assert_eq!(pf.paths(topo.host(a), topo.host(b), 64).len(), 1);
    }

    #[test]
    fn fat_tree_paths_are_valid(
        k in prop::sample::select(vec![2usize, 4, 6]),
        a in 0usize..200,
        b in 0usize..200,
        max in 1usize..64,
    ) {
        let topo = fat_tree(k, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        check_path_validity(&topo, topo.host(a), topo.host(b), max);
    }

    #[test]
    fn fat_tree_path_counts_match_theory(
        k in prop::sample::select(vec![2usize, 4, 6]),
        a in 0usize..100,
        b in 0usize..100,
    ) {
        let topo = fat_tree(k, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let half = k / 2;
        let hosts_per_pod = half * half;
        let pod = |h: usize| h / hosts_per_pod;
        let edge = |h: usize| h / half;
        let pf = PathFinder::new(&topo);
        let count = pf.paths(topo.host(a), topo.host(b), 10_000).len();
        let expected = if pod(a) != pod(b) {
            half * half
        } else if edge(a) != edge(b) {
            half
        } else {
            1
        };
        prop_assert_eq!(count, expected, "k={}, hosts {},{}", k, a, b);
    }

    #[test]
    fn ecmp_picks_from_candidates_and_is_deterministic(
        k in prop::sample::select(vec![2usize, 4]),
        a in 0usize..50,
        b in 0usize..50,
        hash in any::<u64>(),
    ) {
        let topo = fat_tree(k, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let pf = PathFinder::new(&topo);
        let all = pf.paths(topo.host(a), topo.host(b), 64);
        let e1 = pf.ecmp(topo.host(a), topo.host(b), hash).unwrap();
        let e2 = pf.ecmp(topo.host(a), topo.host(b), hash).unwrap();
        prop_assert_eq!(&e1, &e2, "ECMP must be deterministic");
        prop_assert!(all.contains(&e1), "ECMP outside the candidate set");
    }

    #[test]
    fn path_cache_matches_direct_enumeration(
        k in prop::sample::select(vec![2usize, 4, 6]),
        a in 0usize..200,
        b in 0usize..200,
        max in 1usize..40,
    ) {
        // The cache (including its ToR-pair middle sharing and the
        // even-sampling cap) must be observationally identical to a
        // fresh PathFinder enumeration, on any pair and any budget.
        let topo = fat_tree(k, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let (src, dst) = (topo.host(a), topo.host(b));
        let mut cache = PathCache::new(max);
        let direct = PathFinder::new(&topo).paths(src, dst, max);
        prop_assert_eq!(cache.paths(&topo, src, dst).as_slice(), &direct[..]);
        // Second query answers from the cache and stays identical.
        prop_assert_eq!(cache.paths(&topo, src, dst).as_slice(), &direct[..]);
    }

    #[test]
    fn path_cache_matches_on_trees_too(
        pods in 1usize..4,
        racks in 1usize..4,
        hosts in 1usize..5,
        a in 0usize..100,
        b in 0usize..100,
        max in 1usize..8,
    ) {
        let topo = single_rooted(pods, racks, hosts, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let (src, dst) = (topo.host(a), topo.host(b));
        let mut cache = PathCache::new(max);
        let direct = PathFinder::new(&topo).paths(src, dst, max);
        prop_assert_eq!(cache.paths(&topo, src, dst).as_slice(), &direct[..]);
    }

    #[test]
    fn dumbbell_paths_are_valid(
        l in 1usize..6,
        r in 1usize..6,
        a in 0usize..12,
        b in 0usize..12,
    ) {
        let topo = dumbbell(l, r, GBPS);
        let n = topo.num_hosts();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        check_path_validity(&topo, topo.host(a), topo.host(b), 4);
    }
}
