//! Builders for the topologies the paper evaluates on.
//!
//! All capacities are in bytes per second; the paper uses 1 Gbps links
//! everywhere ([`GBPS`]).

use crate::{NodeId, NodeKind, RoutingMode, Topology};

/// One gigabit per second, in bytes per second (the paper's uniform link
/// capacity).
pub const GBPS: f64 = 1e9 / 8.0;

/// Builds the paper's Fig. 5 three-level **single-rooted tree**:
/// `pods` aggregation switches hang off one core switch, each aggregation
/// switch serves `racks_per_pod` ToR switches, and each rack holds
/// `hosts_per_rack` hosts. Every link has capacity `capacity` B/s.
///
/// The paper's full-scale instance is `single_rooted(30, 30, 40, GBPS)`:
/// 36 000 hosts.
pub fn single_rooted(
    pods: usize,
    racks_per_pod: usize,
    hosts_per_rack: usize,
    capacity: f64,
) -> Topology {
    assert!(pods > 0 && racks_per_pod > 0 && hosts_per_rack > 0);
    let mut t = Topology::new(
        format!("single-rooted({pods},{racks_per_pod},{hosts_per_rack})"),
        RoutingMode::UpDown,
    );
    let core = t.add_node(NodeKind::CoreSwitch, 3);
    for _ in 0..pods {
        let agg = t.add_node(NodeKind::AggSwitch, 2);
        t.add_duplex_link(agg, core, capacity);
        for _ in 0..racks_per_pod {
            let tor = t.add_node(NodeKind::TorSwitch, 1);
            t.add_duplex_link(tor, agg, capacity);
            for _ in 0..hosts_per_rack {
                let host = t.add_node(NodeKind::Host, 0);
                t.add_duplex_link(host, tor, capacity);
            }
        }
    }
    debug_assert!(t.validate().is_ok());
    t
}

/// Builds a classic `k`-pod **fat-tree** (Al-Fares et al., the paper's
/// multi-rooted topology): `k` pods, each with `k/2` edge and `k/2`
/// aggregation switches; `(k/2)^2` core switches; `k^3/4` hosts. `k` must
/// be even and ≥ 2.
///
/// The paper's instance is `fat_tree(32, GBPS)`: 8 192 hosts.
///
/// Wiring: edge switch `e` of a pod connects to all `k/2` aggregation
/// switches of that pod; aggregation switch `a` (0-based within its pod)
/// connects to core switches `a*k/2 .. (a+1)*k/2`.
pub fn fat_tree(k: usize, capacity: f64) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires even k >= 2"
    );
    // Sizing paths below pack node/link counts into u32 ids; keep the
    // k=32-and-beyond regime on the checked boundary instead of trusting
    // bare conversions (the node count is k^3/4 + 5k^2/4).
    let nodes = k * k * k / 4 + 5 * k * k / 4;
    assert!(
        u32::try_from(2 * nodes).is_ok(),
        "fat-tree k={k} exceeds the u32 id space"
    );
    let half = k / 2;
    let mut t = Topology::new(format!("fat-tree({k})"), RoutingMode::UpDown);

    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| t.add_node(NodeKind::CoreSwitch, 3))
        .collect();

    for _pod in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|_| t.add_node(NodeKind::AggSwitch, 2))
            .collect();
        for (a, agg) in aggs.iter().enumerate() {
            for c in 0..half {
                t.add_duplex_link(*agg, cores[a * half + c], capacity);
            }
        }
        for _e in 0..half {
            let edge = t.add_node(NodeKind::TorSwitch, 1);
            for agg in &aggs {
                t.add_duplex_link(edge, *agg, capacity);
            }
            for _h in 0..half {
                let host = t.add_node(NodeKind::Host, 0);
                t.add_duplex_link(host, edge, capacity);
            }
        }
    }
    // Pod-major host packing: host `h` lives in pod `h / (k^2/4)`. The
    // sharded controller relies on this when it partitions demands, so
    // pin it here where the ids are packed.
    debug_assert_eq!(t.num_hosts(), k * k * k / 4);
    #[cfg(debug_assertions)]
    {
        let pods = crate::pods::PodMap::new(&t);
        for h in 0..t.num_hosts() {
            debug_assert_eq!(
                pods.host_pod(h),
                u32::try_from(h / (k * k / 4)).unwrap_or(u32::MAX),
                "host {h} packed outside its pod"
            );
        }
    }
    debug_assert!(t.validate().is_ok());
    t
}

/// Builds the paper's Fig. 13 **partial fat-tree testbed**: 8 hosts in 4
/// racks across 2 pods; each pod has 2 edge and 2 aggregation switches;
/// 2 core switches connect the pods (aggregation switch `i` of each pod
/// connects to core `i`).
pub fn partial_fat_tree_testbed(capacity: f64) -> Topology {
    let mut t = Topology::new("partial-fat-tree-testbed", RoutingMode::UpDown);
    let core0 = t.add_node(NodeKind::CoreSwitch, 3);
    let core1 = t.add_node(NodeKind::CoreSwitch, 3);
    for _pod in 0..2 {
        let agg0 = t.add_node(NodeKind::AggSwitch, 2);
        let agg1 = t.add_node(NodeKind::AggSwitch, 2);
        t.add_duplex_link(agg0, core0, capacity);
        t.add_duplex_link(agg1, core1, capacity);
        for _rack in 0..2 {
            let edge = t.add_node(NodeKind::TorSwitch, 1);
            t.add_duplex_link(edge, agg0, capacity);
            t.add_duplex_link(edge, agg1, capacity);
            for _h in 0..2 {
                let host = t.add_node(NodeKind::Host, 0);
                t.add_duplex_link(host, edge, capacity);
            }
        }
    }
    debug_assert!(t.validate().is_ok());
    t
}

/// Builds a **dumbbell**: `left` hosts on one switch, `right` hosts on
/// another, and a single bottleneck cable between the switches. This is
/// the "one bottleneck link" setting of the motivation examples
/// (Figs. 1 and 2).
pub fn dumbbell(left: usize, right: usize, capacity: f64) -> Topology {
    assert!(left > 0 && right > 0);
    let mut t = Topology::new(
        format!("dumbbell({left},{right})"),
        RoutingMode::ShortestPath,
    );
    let sl = t.add_node(NodeKind::TorSwitch, 1);
    let sr = t.add_node(NodeKind::TorSwitch, 1);
    t.add_duplex_link(sl, sr, capacity);
    for _ in 0..left {
        let h = t.add_node(NodeKind::Host, 0);
        t.add_duplex_link(h, sl, capacity);
    }
    for _ in 0..right {
        let h = t.add_node(NodeKind::Host, 0);
        t.add_duplex_link(h, sr, capacity);
    }
    debug_assert!(t.validate().is_ok());
    t
}

/// Builds a **BCube(n, k)** server-centric topology (Guo et al.,
/// SIGCOMM'09 — cited by §II as one of the rich-connected architectures
/// TAPS's multipath routing targets).
///
/// `BCube(n, 0)` is `n` hosts on one switch; `BCube(n, k)` is `n`
/// copies of `BCube(n, k-1)` plus `n^k` level-`k` switches, where host
/// `i` of copy `c` connects to level-`k` switch `i` on port `k`.
/// Total: `n^(k+1)` hosts, `(k+1)·n^k` switches; every host has `k+1`
/// links. Servers forward traffic in BCube, so paths may relay through
/// intermediate hosts — path enumeration therefore uses BFS
/// ([`RoutingMode::ShortestPath`]) rather than valley-free levels.
pub fn bcube(n: usize, k: usize, capacity: f64) -> Topology {
    assert!(n >= 2, "BCube needs n >= 2 hosts per level-0 switch");
    assert!(k <= 3, "keep BCube instances tractable (k <= 3)");
    let mut t = Topology::new(format!("bcube({n},{k})"), RoutingMode::ShortestPath);
    let num_hosts = n.pow(k as u32 + 1);
    let hosts: Vec<NodeId> = (0..num_hosts)
        .map(|_| t.add_node(NodeKind::Host, 0))
        .collect();
    // Level l has n^k switches; switch s at level l connects the hosts
    // whose address agrees with s on every digit except digit l.
    let switches_per_level = n.pow(k as u32);
    for level in 0..=k {
        for s in 0..switches_per_level {
            let sw = t.add_node(NodeKind::TorSwitch, 1);
            // The hosts of this switch: insert digit `a` at position
            // `level` into the (k-digit) switch index `s`.
            let high = s / n.pow(level as u32);
            let low = s % n.pow(level as u32);
            for a in 0..n {
                let host = (high * n + a) * n.pow(level as u32) + low;
                t.add_duplex_link(hosts[host], sw, capacity);
            }
        }
    }
    debug_assert!(t.validate().is_ok());
    t
}

/// Builds the Fig. 3 **global-scheduling motivation topology**: four
/// hosts on four edge switches `S1..S4`, all connected through a central
/// switch `S5`. Host `i` (1-based, as in the paper) is
/// `topology.host(i - 1)`.
pub fn fig3_star(capacity: f64) -> Topology {
    let mut t = Topology::new("fig3-star", RoutingMode::ShortestPath);
    let s5 = t.add_node(NodeKind::CoreSwitch, 2);
    for _ in 0..4 {
        let s = t.add_node(NodeKind::TorSwitch, 1);
        t.add_duplex_link(s, s5, capacity);
        let h = t.add_node(NodeKind::Host, 0);
        t.add_duplex_link(h, s, capacity);
    }
    debug_assert!(t.validate().is_ok());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn single_rooted_counts() {
        let t = single_rooted(3, 4, 5, GBPS);
        assert_eq!(t.num_hosts(), 3 * 4 * 5);
        // 1 core + 3 agg + 12 tor + 60 hosts
        assert_eq!(t.num_nodes(), 1 + 3 + 12 + 60);
        // cables: 3 agg-core + 12 tor-agg + 60 host-tor, x2 directions
        assert_eq!(t.num_links(), 2 * (3 + 12 + 60));
        assert_eq!(t.uniform_capacity(), Some(GBPS));
    }

    #[test]
    fn paper_scale_single_rooted() {
        let t = single_rooted(30, 30, 40, GBPS);
        assert_eq!(t.num_hosts(), 36_000);
        t.validate().unwrap();
    }

    #[test]
    fn fat_tree_counts() {
        for k in [2usize, 4, 8] {
            let t = fat_tree(k, GBPS);
            assert_eq!(t.num_hosts(), k * k * k / 4, "hosts for k={k}");
            let switches = t.num_nodes() - t.num_hosts();
            // (k/2)^2 cores + k pods x (k/2 agg + k/2 edge)
            assert_eq!(switches, (k / 2) * (k / 2) + k * k, "switches for k={k}");
            // cables: cores-agg k*(k/2)*(k/2)... each pod: (k/2 aggs x k/2 core links)
            // + (k/2 edges x k/2 agg links) + (k/2 edges x k/2 hosts)
            let cables = k * (k / 2) * (k / 2) * 3;
            assert_eq!(t.num_links(), 2 * cables, "links for k={k}");
            t.validate().unwrap();
        }
    }

    #[test]
    fn fat_tree_paper_scale() {
        let t = fat_tree(32, GBPS);
        assert_eq!(t.num_hosts(), 8192);
    }

    #[test]
    fn testbed_structure() {
        let t = partial_fat_tree_testbed(GBPS);
        assert_eq!(t.num_hosts(), 8);
        let kinds: Vec<usize> = [
            NodeKind::CoreSwitch,
            NodeKind::AggSwitch,
            NodeKind::TorSwitch,
        ]
        .iter()
        .map(|k| {
            (0..t.num_nodes())
                .filter(|i| t.node(crate::NodeId(*i as u32)).kind == *k)
                .count()
        })
        .collect();
        assert_eq!(kinds, vec![2, 4, 4]);
        t.validate().unwrap();
    }

    #[test]
    fn dumbbell_structure() {
        let t = dumbbell(2, 2, GBPS);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_links(), 2 * (1 + 4));
    }

    #[test]
    fn bcube_structure() {
        // BCube(4,1): 16 hosts, 2 levels x 4 switches, every host has
        // 2 links (one per level).
        let t = bcube(4, 1, GBPS);
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.num_nodes(), 16 + 8);
        // cables: each level connects all 16 hosts once -> 32 cables.
        assert_eq!(t.num_links(), 2 * 32);
        for h in 0..16 {
            assert_eq!(t.neighbors(t.host(h)).len(), 2);
        }
        t.validate().unwrap();

        let t2 = bcube(2, 2, GBPS);
        assert_eq!(t2.num_hosts(), 8);
        assert_eq!(t2.num_nodes() - t2.num_hosts(), 3 * 4);
    }

    #[test]
    fn bcube_paths_exist_between_all_hosts() {
        use crate::paths::PathFinder;
        let t = bcube(3, 1, GBPS);
        let pf = PathFinder::new(&t);
        for a in 0..t.num_hosts() {
            for b in 0..t.num_hosts() {
                if a == b {
                    continue;
                }
                let paths = pf.paths(t.host(a), t.host(b), 8);
                assert!(!paths.is_empty(), "no path {a}->{b}");
                // Same level-0 switch (same high digit): 2 hops; same
                // level-1 switch (same low digit): 2 hops; otherwise the
                // shortest route relays through one intermediate host:
                // 4 hops.
                let same_l0 = a / 3 == b / 3;
                let same_l1 = a % 3 == b % 3;
                let expect = if same_l0 || same_l1 { 2 } else { 4 };
                assert_eq!(paths[0].len(), expect, "hosts {a},{b}");
            }
        }
    }

    #[test]
    fn fig3_structure() {
        let t = fig3_star(GBPS);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_nodes(), 9);
        assert_eq!(t.num_links(), 2 * 8);
    }
}
