//! Candidate-path cache for Alg. 2.
//!
//! TAPS re-runs its whole allocation on every task arrival (Alg. 1), so
//! the same (src, dst) pairs are path-enumerated over and over even though
//! the topology never changes mid-run. [`PathCache`] memoizes the capped
//! candidate list per endpoint pair.
//!
//! On the paper's tree/fat-tree families the cache additionally exploits
//! an equivalence: in [`RoutingMode::UpDown`], when both endpoints are
//! leaf hosts (exactly one uplink each), every valley-free path is
//! `src → ToR(src)` ++ *middle* ++ `ToR(dst) → dst`, and the set of
//! middles — including the simplicity filter and the stable
//! shortest-first ordering — depends only on the ToR pair. The cache
//! therefore enumerates once per **ToR pair** and reconstitutes the
//! per-host-pair lists by substituting the two end links, collapsing the
//! `O(hosts²)` pair space onto the `O(racks²)` rack space (a 32-pod
//! fat-tree has 8 192 hosts but only 256 racks).

use crate::paths::{sample_evenly, PathFinder};
use crate::{LinkId, NodeId, Path, RoutingMode, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Memoizes [`PathFinder::paths`] results for a fixed candidate budget.
///
/// The cache holds [`Arc`]s so a hit is a reference-count bump, not a
/// deep copy of the path list. Every lookup compares the topology's
/// fault-state [`epoch`](Topology::epoch) against the epoch the cache was
/// filled at and self-clears on mismatch, so entries never outlive a
/// link/switch failure or repair. Callers that can see more than one
/// topology must still [`clear`](Self::clear) when switching topologies
/// (the allocator engine guards this).
pub struct PathCache {
    /// Candidate budget, as in [`PathFinder::paths`]'s `max_paths`.
    max_paths: usize,
    /// Finished per-pair candidate lists (capped).
    by_pair: HashMap<(NodeId, NodeId), Arc<Vec<Path>>>,
    /// Shared *uncapped* middles per (ToR(src), ToR(dst)) pair.
    middles: HashMap<(NodeId, NodeId), Arc<Vec<Vec<LinkId>>>>,
    /// How many times the underlying enumeration actually ran.
    enumerations: u64,
    /// Fault-state epoch the cached entries were computed at.
    epoch: u64,
}

impl PathCache {
    /// Creates an empty cache with the given candidate budget.
    /// Panics if `max_paths == 0`.
    pub fn new(max_paths: usize) -> Self {
        assert!(max_paths > 0);
        PathCache {
            max_paths,
            by_pair: HashMap::new(),
            middles: HashMap::new(),
            enumerations: 0,
            epoch: 0,
        }
    }

    /// The candidate budget the cache was built for.
    #[inline]
    pub fn max_paths(&self) -> usize {
        self.max_paths
    }

    /// Number of full [`PathFinder::paths`] enumerations performed so far
    /// (cache *misses* at the enumeration level). Tests use this to prove
    /// that ToR-pair sharing avoids per-host-pair enumeration.
    #[inline]
    pub fn enumerations(&self) -> u64 {
        self.enumerations
    }

    /// Drops every cached entry (topology changed).
    pub fn clear(&mut self) {
        self.by_pair.clear();
        self.middles.clear();
    }

    /// Candidate paths from `src` to `dst`, identical to
    /// `PathFinder::new(topo).paths(src, dst, self.max_paths)`.
    pub fn paths(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Arc<Vec<Path>> {
        if self.epoch != topo.epoch() {
            // A link or switch changed state since the cache was filled:
            // every memoized candidate list is suspect.
            self.clear();
            self.epoch = topo.epoch();
        }
        if let Some(p) = self.by_pair.get(&(src, dst)) {
            return Arc::clone(p);
        }
        let paths = match leaf_uplinks(topo, src, dst) {
            Some((src_up, dst_up)) => self.paths_via_tor_pair(topo, src, dst, src_up, dst_up),
            None => {
                self.enumerations += 1;
                PathFinder::new(topo).paths(src, dst, self.max_paths)
            }
        };
        let arc = Arc::new(paths);
        self.by_pair.insert((src, dst), Arc::clone(&arc));
        arc
    }

    /// Pre-enumerates the shared middles for every ordered ToR pair, so
    /// no admission-time lookup pays the uncapped enumeration. Intended
    /// for topology bring-up — an SDN controller installs its path
    /// tables before traffic arrives — and pure memoization: a warm
    /// cache returns lists bit-identical to a cold one. Topologies (or
    /// routing modes) without ToR-pair sharing warm nothing.
    pub fn warm(&mut self, topo: &Topology) {
        self.warm_filtered(topo, |_| true);
    }

    /// [`warm`](Self::warm) restricted to one pod: only ordered ToR pairs
    /// whose representative hosts both live in `pod` are pre-enumerated.
    /// A per-pod shard engine only ever allocates pod-local flows, so
    /// warming the cross-pod pairs (the bulk at k=32: 512 ToRs give
    /// ~261k ordered pairs against 240 per pod) would be wasted work —
    /// and doing it per shard lets bring-up run pods in parallel.
    pub fn warm_pod(
        &mut self,
        topo: &Topology,
        pods: &crate::pods::PodMap,
        pod: crate::pods::PodId,
    ) {
        self.warm_filtered(topo, |h| pods.host_pod(h) == pod);
    }

    fn warm_filtered(&mut self, topo: &Topology, keep_host: impl Fn(usize) -> bool) {
        if topo.routing != RoutingMode::UpDown {
            return;
        }
        if self.epoch != topo.epoch() {
            self.clear();
            self.epoch = topo.epoch();
        }
        // One representative host per ToR: sharing makes every host
        // under the same ToR interchangeable for enumeration.
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut reps: Vec<NodeId> = Vec::new();
        for h in 0..topo.num_hosts() {
            if !keep_host(h) {
                continue;
            }
            let host = topo.host(h);
            if let Some(up) = leaf_uplink(topo, host) {
                if seen.insert(topo.link(up).dst) {
                    reps.push(host);
                }
            }
        }
        for &hs in &reps {
            for &hd in &reps {
                if hs != hd {
                    let _ = self.paths(topo, hs, hd);
                }
            }
        }
    }

    /// The ToR-pair sharing branch: fetch (or enumerate once) the shared
    /// middles, then rebuild this pair's list by substituting end links
    /// and capping exactly as `PathFinder::paths` would.
    fn paths_via_tor_pair(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        src_up: LinkId,
        dst_up: LinkId,
    ) -> Vec<Path> {
        let tor_src = topo.link(src_up).dst;
        let tor_dst = topo.link(dst_up).dst;
        let dst_down = topo.link(dst_up).reverse;
        let middles = match self.middles.get(&(tor_src, tor_dst)) {
            Some(m) => Arc::clone(m),
            None => {
                self.enumerations += 1;
                // Uncapped enumeration for *this* pair; every valley-free
                // path between distinct leaf hosts starts with the src
                // uplink and ends with the dst downlink, so stripping
                // both yields the host-independent middles in the same
                // (stable, shortest-first) order.
                let full = PathFinder::new(topo).paths(src, dst, usize::MAX);
                let mids: Vec<Vec<LinkId>> = full
                    .iter()
                    .map(|p| {
                        debug_assert!(p.links.len() >= 2);
                        debug_assert_eq!(p.links.first(), Some(&src_up));
                        debug_assert_eq!(p.links.last(), Some(&dst_down));
                        p.links[1..p.links.len() - 1].to_vec()
                    })
                    .collect();
                let mids = Arc::new(mids);
                self.middles.insert((tor_src, tor_dst), Arc::clone(&mids));
                mids
            }
        };
        // Same even sampling as the direct enumeration: the sampled
        // indices depend only on the list length and the budget, so
        // sampling the middles first and rebuilding only the survivors
        // yields exactly `sample_evenly(rebuild(middles))` without
        // allocating the paths that the cap would discard.
        Self::assemble(src_up, dst_down, &middles, self.max_paths)
    }

    /// Substitutes the end links into the shared middles and caps,
    /// exactly as the direct enumeration would.
    fn assemble(
        src_up: LinkId,
        dst_down: LinkId,
        middles: &[Vec<LinkId>],
        max_paths: usize,
    ) -> Vec<Path> {
        let kept: Vec<&Vec<LinkId>> = sample_evenly(middles.iter().collect(), max_paths);
        kept.into_iter()
            .map(|m| {
                let mut links = Vec::with_capacity(m.len() + 2);
                links.push(src_up);
                links.extend_from_slice(m);
                links.push(dst_down);
                Path { links }
            })
            .collect()
    }
}

/// When ToR-pair sharing applies — valley-free routing with both
/// endpoints leaf hosts (a single uplink each, toward a higher level) —
/// returns their uplinks.
fn leaf_uplinks(topo: &Topology, src: NodeId, dst: NodeId) -> Option<(LinkId, LinkId)> {
    if topo.routing != RoutingMode::UpDown || src == dst {
        return None;
    }
    Some((leaf_uplink(topo, src)?, leaf_uplink(topo, dst)?))
}

/// The single live uplink of a leaf host, when it has exactly one.
fn leaf_uplink(topo: &Topology, n: NodeId) -> Option<LinkId> {
    match topo.neighbors(n) {
        // The uplink must be live for the sharing argument to hold
        // (a dead uplink means *no* valley-free paths; fall through to
        // the direct enumeration, which returns none).
        &[(next, link)] if topo.node(next).level > topo.node(n).level && topo.is_link_up(link) => {
            Some(link)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{dumbbell, fat_tree, fig3_star, single_rooted, GBPS};

    fn direct(topo: &Topology, a: usize, b: usize, max: usize) -> Vec<Path> {
        PathFinder::new(topo).paths(topo.host(a), topo.host(b), max)
    }

    #[test]
    fn cache_matches_direct_enumeration() {
        for (topo, max) in [
            (fat_tree(4, GBPS), 16),
            (fat_tree(4, GBPS), 2),
            (single_rooted(2, 2, 2, GBPS), 8),
            (dumbbell(2, 2, GBPS), 4),
            (fig3_star(GBPS), 4),
        ] {
            let mut cache = PathCache::new(max);
            let n = topo.num_hosts();
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let got = cache.paths(&topo, topo.host(a), topo.host(b));
                    let want = direct(&topo, a, b, max);
                    assert_eq!(*got, want, "{} {a}->{b} max={max}", topo.name);
                }
            }
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let topo = fat_tree(4, GBPS);
        let mut cache = PathCache::new(16);
        let p1 = cache.paths(&topo, topo.host(0), topo.host(8));
        let misses = cache.enumerations();
        let p2 = cache.paths(&topo, topo.host(0), topo.host(8));
        assert_eq!(cache.enumerations(), misses, "second query must be a hit");
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn tor_pair_sharing_avoids_reenumeration() {
        // Hosts 0,1 hang off one ToR; hosts 8,9 off another (k=4 fat-tree,
        // 2 hosts per rack). Four host pairs, one ToR pair: exactly one
        // enumeration.
        let topo = fat_tree(4, GBPS);
        let mut cache = PathCache::new(16);
        for a in [0usize, 1] {
            for b in [8usize, 9] {
                let got = cache.paths(&topo, topo.host(a), topo.host(b));
                assert_eq!(*got, direct(&topo, a, b, 16));
            }
        }
        assert_eq!(cache.enumerations(), 1);
    }

    #[test]
    fn fault_epoch_invalidates_cache() {
        let topo = fat_tree(4, GBPS);
        let mut cache = PathCache::new(16);
        let before = cache.paths(&topo, topo.host(0), topo.host(8));
        let dead = before[0].links[1];
        topo.fail_link(dead);
        let after = cache.paths(&topo, topo.host(0), topo.host(8));
        assert_eq!(*after, direct(&topo, 0, 8, 16));
        let rev = topo.link(dead).reverse;
        for p in after.iter() {
            assert!(!p.links.contains(&dead) && !p.links.contains(&rev));
        }
        topo.restore_link(dead);
        let restored = cache.paths(&topo, topo.host(0), topo.host(8));
        assert_eq!(*restored, *before, "restore must resurface the full set");
    }

    #[test]
    fn dead_uplink_disables_tor_pair_sharing() {
        let topo = fat_tree(4, GBPS);
        let mut cache = PathCache::new(16);
        // Kill host 0's only uplink: the ToR-sharing precondition fails
        // and the direct enumeration correctly reports disconnection.
        let up = topo.neighbors(topo.host(0))[0].1;
        topo.fail_link(up);
        assert!(cache.paths(&topo, topo.host(0), topo.host(8)).is_empty());
        // Sibling host 1 is unaffected.
        assert!(!cache.paths(&topo, topo.host(1), topo.host(8)).is_empty());
    }

    #[test]
    fn clear_forgets_everything() {
        let topo = fat_tree(4, GBPS);
        let mut cache = PathCache::new(16);
        cache.paths(&topo, topo.host(0), topo.host(8));
        cache.clear();
        cache.paths(&topo, topo.host(0), topo.host(8));
        assert_eq!(cache.enumerations(), 2);
    }
}
