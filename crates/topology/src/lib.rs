//! Data-center network topology substrate for the TAPS reproduction.
//!
//! The paper evaluates TAPS on a three-level single-rooted tree (Fig. 5,
//! 36 000 hosts), a 32-pod fat-tree (8 192 hosts), a small partial fat-tree
//! testbed (Fig. 13, 8 hosts) and ad-hoc motivation topologies (Figs. 1–3).
//! This crate models all of them as directed multigraphs with per-link
//! capacities and provides the path machinery the schedulers need:
//!
//! * **valley-free (up-down) path enumeration** for hierarchical
//!   topologies — this is what TAPS's Alg. 2 iterates over, and it scales
//!   to the paper's 36 000-host tree because it never materializes the
//!   whole graph search space;
//! * **BFS-based shortest-path enumeration** for arbitrary small graphs
//!   (the Fig. 3 motivation topology);
//! * **flow-level ECMP** hashing, used to extend the single-path baselines
//!   (Fair Sharing, D3, PDQ, Baraat, Varys) to multi-rooted trees exactly
//!   as §V-A prescribes.
//!
//! Links are *directed*: one full-duplex cable contributes two independent
//! directed links, so a flow `a → b` never contends with a flow `b → a`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod cache;
pub mod paths;
pub mod pods;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Index of a node (host or switch) in a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a *directed* link in a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl NodeId {
    /// The node index as a `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// A `NodeId` from a `usize` index, asserting it fits (a k=32
    /// fat-tree holds 9 472 nodes, far below `u32::MAX`, but the
    /// conversion stays checked so sizing paths need no bare `as` cast).
    #[inline]
    pub fn from_idx(i: usize) -> NodeId {
        assert!(u32::try_from(i).is_ok(), "node index {i} exceeds u32");
        NodeId(i as u32)
    }
}

impl LinkId {
    /// The link index as a `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// A `LinkId` from a `usize` index, asserting it fits (a topology can
    /// never hold `u32::MAX` links; this keeps the conversion checked so
    /// callers need no bare `as` cast).
    #[inline]
    pub fn from_idx(i: usize) -> LinkId {
        assert!(u32::try_from(i).is_ok(), "link index {i} exceeds u32");
        LinkId(i as u32)
    }
}

/// What role a node plays in the data center.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// End host (server). Flows originate and terminate only at hosts.
    Host,
    /// Top-of-rack (edge) switch.
    TorSwitch,
    /// Aggregation switch.
    AggSwitch,
    /// Core switch.
    CoreSwitch,
}

impl NodeKind {
    /// Whether the node is a switch of any level.
    #[inline]
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeKind::Host)
    }
}

/// A node of the topology.
#[derive(Clone, Debug)]
pub struct Node {
    /// Role of the node.
    pub kind: NodeKind,
    /// Hierarchy level used by valley-free routing: hosts are 0, ToR 1,
    /// aggregation 2, core 3. Arbitrary topologies may leave levels at 0
    /// and use BFS path enumeration instead.
    pub level: u8,
}

/// A directed link with a fixed capacity in bytes per second.
#[derive(Clone, Debug)]
pub struct Link {
    /// Tail (transmitting) node.
    pub src: NodeId,
    /// Head (receiving) node.
    pub dst: NodeId,
    /// Capacity in bytes per second.
    pub capacity: f64,
    /// The opposite-direction link of the same physical cable.
    pub reverse: LinkId,
}

/// A loop-free directed path, stored as the sequence of directed links
/// from the source host to the destination host.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Path {
    /// Directed links in order from source to destination.
    pub links: Vec<LinkId>,
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.links.iter()).finish()
    }
}

impl Path {
    /// Number of hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path is empty (src == dst).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Minimum capacity along the path; `f64::INFINITY` for empty paths.
    pub fn bottleneck(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|l| topo.link(*l).capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Sequence of nodes visited, starting at the source.
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        if let Some(first) = self.links.first() {
            out.push(topo.link(*first).src);
        }
        for l in &self.links {
            out.push(topo.link(*l).dst);
        }
        out
    }
}

/// How paths should be enumerated on this topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Valley-free up-down routing over the `level` labels. Correct and
    /// fast for the tree/fat-tree families the paper uses.
    UpDown,
    /// Breadth-first shortest-path enumeration over the raw graph. Used
    /// for the ad-hoc motivation topologies.
    ShortestPath,
}

/// A directed data-center topology.
#[derive(Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing adjacency: for each node, `(neighbor, link)` pairs in
    /// insertion order.
    out_adj: Vec<Vec<(NodeId, LinkId)>>,
    /// Host nodes in insertion order; the workload generator addresses
    /// hosts by their index in this vector.
    hosts: Vec<NodeId>,
    /// Path enumeration strategy.
    pub routing: RoutingMode,
    /// Human-readable name, e.g. `"single-rooted(30,30,40)"`.
    pub name: String,
    /// Per-directed-link up/down state for fault injection. Interior
    /// mutability (atomics) because the simulation engine, controller, and
    /// the parallel allocation path all hold `&Topology`; faults are only
    /// applied between simulation events, never concurrently with path
    /// search, so `Relaxed` ordering suffices.
    link_up: Vec<AtomicBool>,
    /// Per-node up/down state; a dead switch implicitly downs every link
    /// incident to it (see [`Topology::is_link_up`]).
    node_up: Vec<AtomicBool>,
    /// Bumped on every link/node state change. Consumers holding derived
    /// state (the candidate-path cache, allocation engines) compare this
    /// against the epoch they were built at and invalidate on mismatch.
    epoch: AtomicU64,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        Topology {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            out_adj: self.out_adj.clone(),
            hosts: self.hosts.clone(),
            routing: self.routing,
            name: self.name.clone(),
            link_up: self
                .link_up
                .iter()
                .map(|b| AtomicBool::new(b.load(Ordering::Relaxed)))
                .collect(),
            node_up: self
                .node_up
                .iter()
                .map(|b| AtomicBool::new(b.load(Ordering::Relaxed)))
                .collect(),
            epoch: AtomicU64::new(self.epoch.load(Ordering::Relaxed)),
        }
    }
}

impl Topology {
    /// Creates an empty topology using the given routing mode.
    pub fn new(name: impl Into<String>, routing: RoutingMode) -> Self {
        Topology {
            nodes: Vec::new(),
            links: Vec::new(),
            out_adj: Vec::new(),
            hosts: Vec::new(),
            routing,
            name: name.into(),
            link_up: Vec::new(),
            node_up: Vec::new(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, level: u8) -> NodeId {
        let id = NodeId::from_idx(self.nodes.len());
        self.nodes.push(Node { kind, level });
        self.out_adj.push(Vec::new());
        self.node_up.push(AtomicBool::new(true));
        if kind == NodeKind::Host {
            self.hosts.push(id);
        }
        id
    }

    /// Adds a full-duplex cable between `a` and `b`: two directed links of
    /// equal capacity (bytes per second). Returns `(a→b, b→a)`.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> (LinkId, LinkId) {
        assert!(capacity > 0.0, "link capacity must be positive");
        assert_ne!(a, b, "self-loops are not allowed");
        let fwd = LinkId::from_idx(self.links.len());
        let rev = LinkId::from_idx(self.links.len() + 1);
        self.links.push(Link {
            src: a,
            dst: b,
            capacity,
            reverse: rev,
        });
        self.links.push(Link {
            src: b,
            dst: a,
            capacity,
            reverse: fwd,
        });
        self.out_adj[a.idx()].push((b, fwd));
        self.out_adj[b.idx()].push((a, rev));
        self.link_up.push(AtomicBool::new(true));
        self.link_up.push(AtomicBool::new(true));
        (fwd, rev)
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Link accessor.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The `i`-th host (workload generators address hosts by index).
    #[inline]
    pub fn host(&self, i: usize) -> NodeId {
        self.hosts[i]
    }

    /// All hosts in insertion order.
    #[inline]
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Outgoing `(neighbor, link)` pairs of a node.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.out_adj[n.idx()]
    }

    /// Iterator over all directed links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId::from_idx(i), l))
    }

    /// Uniform capacity if every link has the same one, else `None`.
    pub fn uniform_capacity(&self) -> Option<f64> {
        let first = self.links.first()?.capacity;
        self.links
            .iter()
            .all(|l| (l.capacity - first).abs() < 1e-9)
            .then_some(first)
    }

    /// Whether the directed link is usable: its cable is up and both
    /// endpoint nodes are up. Both directions of a cable always agree
    /// (fault injection fails and restores cables, not directions).
    #[inline]
    pub fn is_link_up(&self, l: LinkId) -> bool {
        let link = &self.links[l.idx()];
        self.link_up[l.idx()].load(Ordering::Relaxed)
            && self.node_up[link.src.idx()].load(Ordering::Relaxed)
            && self.node_up[link.dst.idx()].load(Ordering::Relaxed)
    }

    /// Whether the node is up.
    #[inline]
    pub fn is_node_up(&self, n: NodeId) -> bool {
        self.node_up[n.idx()].load(Ordering::Relaxed)
    }

    /// Fault-state epoch: bumped on every link/node state change. Derived
    /// state (path caches, allocation engines) stamped with an older epoch
    /// must be rebuilt.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// True when every link and node is up (no outstanding faults).
    pub fn all_up(&self) -> bool {
        self.link_up.iter().all(|b| b.load(Ordering::Relaxed))
            && self.node_up.iter().all(|b| b.load(Ordering::Relaxed))
    }

    /// Downs the cable carrying `l`: both directed links become unusable.
    /// Idempotent; bumps the epoch only on an actual state change.
    pub fn fail_link(&self, l: LinkId) {
        let rev = self.links[l.idx()].reverse;
        let a = self.link_up[l.idx()].swap(false, Ordering::Relaxed);
        let b = self.link_up[rev.idx()].swap(false, Ordering::Relaxed);
        if a || b {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Restores the cable carrying `l`: both directed links come back.
    /// Idempotent; note that links incident to a dead switch stay
    /// unusable until the switch itself is restored.
    pub fn restore_link(&self, l: LinkId) {
        let rev = self.links[l.idx()].reverse;
        let a = self.link_up[l.idx()].swap(true, Ordering::Relaxed);
        let b = self.link_up[rev.idx()].swap(true, Ordering::Relaxed);
        if !a || !b {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Downs a switch: every link incident to it becomes unusable.
    /// Host nodes cannot fail (the paper's fault model is network-side).
    pub fn fail_switch(&self, n: NodeId) {
        assert!(
            self.nodes[n.idx()].kind.is_switch(),
            "only switches can fail; {n:?} is a host"
        );
        if self.node_up[n.idx()].swap(false, Ordering::Relaxed) {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Restores a previously failed switch.
    pub fn restore_switch(&self, n: NodeId) {
        assert!(
            self.nodes[n.idx()].kind.is_switch(),
            "only switches can fail; {n:?} is a host"
        );
        if !self.node_up[n.idx()].swap(true, Ordering::Relaxed) {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clears every outstanding fault (all links and nodes up). The
    /// simulation engine calls this at the start and end of each run so
    /// repeated runs over one `Topology` see identical initial state.
    pub fn reset_faults(&self) {
        let mut changed = false;
        for b in &self.link_up {
            changed |= !b.swap(true, Ordering::Relaxed);
        }
        for b in &self.node_up {
            changed |= !b.swap(true, Ordering::Relaxed);
        }
        if changed {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Checks basic structural invariants (used by tests and debug builds).
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            let rev = &self.links[l.reverse.idx()];
            if rev.src != l.dst || rev.dst != l.src {
                return Err(format!("link l{i} reverse mismatch"));
            }
            if rev.reverse != LinkId::from_idx(i) {
                return Err(format!("link l{i} reverse not involutive"));
            }
        }
        for h in &self.hosts {
            if self.node(*h).kind != NodeKind::Host {
                return Err(format!("host list contains non-host {h:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_links_are_involutive() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let b = t.add_node(NodeKind::TorSwitch, 1);
        let (f, r) = t.add_duplex_link(a, b, 1e9);
        assert_eq!(t.link(f).reverse, r);
        assert_eq!(t.link(r).reverse, f);
        assert_eq!(t.link(f).src, a);
        assert_eq!(t.link(r).src, b);
        t.validate().unwrap();
    }

    #[test]
    fn hosts_registered_in_order() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let h0 = t.add_node(NodeKind::Host, 0);
        let _s = t.add_node(NodeKind::CoreSwitch, 1);
        let h1 = t.add_node(NodeKind::Host, 0);
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.host(0), h0);
        assert_eq!(t.host(1), h1);
    }

    #[test]
    fn path_nodes_and_bottleneck() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let s = t.add_node(NodeKind::TorSwitch, 1);
        let b = t.add_node(NodeKind::Host, 0);
        let (l0, _) = t.add_duplex_link(a, s, 2e9);
        let (l1, _) = t.add_duplex_link(s, b, 1e9);
        let p = Path {
            links: vec![l0, l1],
        };
        assert_eq!(p.nodes(&t), vec![a, s, b]);
        assert!((p.bottleneck(&t) - 1e9).abs() < 1.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn uniform_capacity_detection() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let b = t.add_node(NodeKind::Host, 0);
        let c = t.add_node(NodeKind::Host, 0);
        t.add_duplex_link(a, b, 1e9);
        assert_eq!(t.uniform_capacity(), Some(1e9));
        t.add_duplex_link(b, c, 2e9);
        assert_eq!(t.uniform_capacity(), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        t.add_duplex_link(a, a, 1e9);
    }

    #[test]
    fn fail_link_downs_both_directions_and_bumps_epoch() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let b = t.add_node(NodeKind::TorSwitch, 1);
        let (f, r) = t.add_duplex_link(a, b, 1e9);
        assert!(t.is_link_up(f) && t.is_link_up(r));
        let e0 = t.epoch();
        t.fail_link(f);
        assert!(!t.is_link_up(f) && !t.is_link_up(r));
        assert_eq!(t.epoch(), e0 + 1);
        // Idempotent: a second failure is not a state change.
        t.fail_link(r);
        assert_eq!(t.epoch(), e0 + 1);
        t.restore_link(r);
        assert!(t.is_link_up(f) && t.is_link_up(r));
        assert_eq!(t.epoch(), e0 + 2);
    }

    #[test]
    fn switch_failure_downs_incident_links() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let s = t.add_node(NodeKind::TorSwitch, 1);
        let b = t.add_node(NodeKind::Host, 0);
        let (l0, _) = t.add_duplex_link(a, s, 1e9);
        let (l1, _) = t.add_duplex_link(s, b, 1e9);
        t.fail_switch(s);
        assert!(!t.is_node_up(s));
        assert!(!t.is_link_up(l0) && !t.is_link_up(l1));
        // Restoring a link through a dead switch does not revive it.
        t.restore_link(l0);
        assert!(!t.is_link_up(l0));
        t.restore_switch(s);
        assert!(t.is_link_up(l0) && t.is_link_up(l1));
        assert!(t.all_up());
    }

    #[test]
    #[should_panic(expected = "only switches")]
    fn host_failure_panics() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        t.fail_switch(a);
    }

    #[test]
    fn reset_faults_restores_everything_and_clone_preserves_state() {
        let mut t = Topology::new("t", RoutingMode::ShortestPath);
        let a = t.add_node(NodeKind::Host, 0);
        let s = t.add_node(NodeKind::AggSwitch, 2);
        let (l, _) = t.add_duplex_link(a, s, 1e9);
        t.fail_link(l);
        t.fail_switch(s);
        let snapshot = t.clone();
        assert!(!snapshot.is_link_up(l) && !snapshot.is_node_up(s));
        assert_eq!(snapshot.epoch(), t.epoch());
        t.reset_faults();
        assert!(t.all_up());
        // Reset with nothing outstanding leaves the epoch alone.
        let e = t.epoch();
        t.reset_faults();
        assert_eq!(t.epoch(), e);
    }
}
