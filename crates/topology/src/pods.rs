//! Pod ownership map for sharded admission.
//!
//! A *pod* is a connected component of the topology with the core layer
//! removed: in a fat-tree this is exactly the paper's pod (ToR + agg
//! switches + their hosts), in a single-rooted tree it is the subtree
//! under one top-level child, and in a dumbbell the whole fabric
//! collapses to a single pod (sharding degenerates gracefully). The map
//! classifies every node, host and directed link by pod so a sharded
//! controller can decide locally whether a flow is pod-local (both
//! endpoints in the same pod — its candidate paths can never leave the
//! pod, valley-free routing has no reason to climb to the core) or
//! cross-pod (serialized by the core-layer coordinator).
//!
//! The map is purely structural: fault state does not move a node
//! between pods, so it is computed once per topology and shared.

use crate::{LinkId, NodeId, NodeKind, Topology};

/// Which pod, if any, a node/link belongs to. Core switches and the
/// links touching them belong to no pod (they are coordinator-owned).
pub type PodId = u32;

/// Structural pod partition of a topology. See the module docs.
#[derive(Clone, Debug)]
pub struct PodMap {
    /// Per node index: its pod, or `None` for core switches.
    node_pod: Vec<Option<PodId>>,
    /// Per host index (the `Topology::host` order): the owning pod.
    host_pod: Vec<PodId>,
    /// Per directed link index: the pod owning both endpoints, or `None`
    /// when either endpoint is a core switch.
    link_pod: Vec<Option<PodId>>,
    num_pods: usize,
}

impl PodMap {
    /// Computes the pod partition: connected components of the node set
    /// with every core switch removed, numbered in first-seen node-id
    /// order (deterministic — in a fat-tree built by
    /// [`crate::build::fat_tree`] pod ids equal the paper's pod numbers).
    pub fn new(topo: &Topology) -> PodMap {
        let n = topo.num_nodes();
        let mut node_pod: Vec<Option<PodId>> = vec![None; n];
        let mut num_pods = 0usize;
        let mut queue: Vec<NodeId> = Vec::new();
        for start in 0..n {
            let start = NodeId::from_idx(start);
            if topo.node(start).kind == NodeKind::CoreSwitch || node_pod[start.idx()].is_some() {
                continue;
            }
            // lint: panic-ok(node ids are u32, so a topology can never hold 2^32 pods)
            let pod = PodId::try_from(num_pods).expect("pod count exceeds u32");
            num_pods += 1;
            node_pod[start.idx()] = Some(pod);
            queue.clear();
            queue.push(start);
            while let Some(v) = queue.pop() {
                for &(next, _) in topo.neighbors(v) {
                    if topo.node(next).kind == NodeKind::CoreSwitch {
                        continue;
                    }
                    if node_pod[next.idx()].is_none() {
                        node_pod[next.idx()] = Some(pod);
                        queue.push(next);
                    }
                }
            }
        }
        let host_pod: Vec<PodId> = topo
            .hosts()
            .iter()
            .map(|h| {
                // lint: panic-ok(invariant: a host is never a core switch, so the BFS assigned it a pod)
                node_pod[h.idx()].expect("host outside every pod")
            })
            .collect();
        let link_pod: Vec<Option<PodId>> = topo
            .links()
            .map(|(_, l)| {
                let a = node_pod[l.src.idx()];
                let b = node_pod[l.dst.idx()];
                match (a, b) {
                    (Some(x), Some(y)) if x == y => Some(x),
                    _ => None,
                }
            })
            .collect();
        debug_assert_eq!(host_pod.len(), topo.num_hosts());
        debug_assert_eq!(link_pod.len(), topo.num_links());
        PodMap {
            node_pod,
            host_pod,
            link_pod,
            num_pods,
        }
    }

    /// Number of pods.
    #[inline]
    pub fn num_pods(&self) -> usize {
        self.num_pods
    }

    /// The pod of a node, or `None` for core switches.
    #[inline]
    pub fn node_pod(&self, n: NodeId) -> Option<PodId> {
        self.node_pod[n.idx()]
    }

    /// The pod of the `i`-th host (the [`Topology::host`] order).
    #[inline]
    pub fn host_pod(&self, host: usize) -> PodId {
        self.host_pod[host]
    }

    /// The pod owning a directed link, or `None` when the link touches
    /// the core layer (coordinator-owned).
    #[inline]
    pub fn link_pod(&self, l: LinkId) -> Option<PodId> {
        self.link_pod[l.idx()]
    }

    /// Whether a flow between two host indices stays inside one pod.
    #[inline]
    pub fn is_pod_local(&self, src_host: usize, dst_host: usize) -> bool {
        self.host_pod[src_host] == self.host_pod[dst_host]
    }

    /// Host indices of one pod, in host order.
    pub fn pod_hosts(&self, pod: PodId) -> Vec<usize> {
        self.host_pod
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == pod)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{dumbbell, fat_tree, single_rooted, GBPS};

    #[test]
    fn fat_tree_pods_match_the_paper_numbering() {
        for k in [4usize, 8] {
            let topo = fat_tree(k, GBPS);
            let pods = PodMap::new(&topo);
            assert_eq!(pods.num_pods(), k);
            let per_pod = k * k / 4;
            for h in 0..topo.num_hosts() {
                assert_eq!(
                    pods.host_pod(h),
                    PodId::try_from(h / per_pod).unwrap(),
                    "host {h} pod"
                );
            }
            // Every core-touching link is coordinator-owned, the rest
            // belong to exactly the pod of both endpoints.
            for (id, l) in topo.links() {
                let core = topo.node(l.src).kind == NodeKind::CoreSwitch
                    || topo.node(l.dst).kind == NodeKind::CoreSwitch;
                assert_eq!(pods.link_pod(id).is_none(), core, "link {id:?}");
            }
        }
    }

    #[test]
    fn pod_locality_splits_intra_from_inter() {
        let topo = fat_tree(4, GBPS);
        let pods = PodMap::new(&topo);
        assert!(pods.is_pod_local(0, 3)); // same pod (hosts 0..4)
        assert!(!pods.is_pod_local(0, 4)); // pods 0 and 1
        assert_eq!(pods.pod_hosts(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_rooted_partitions_by_top_level_child() {
        let topo = single_rooted(3, 2, 4, GBPS);
        let pods = PodMap::new(&topo);
        assert_eq!(pods.num_pods(), 3);
        assert!(pods.is_pod_local(0, 7));
        assert!(!pods.is_pod_local(0, 8));
    }

    #[test]
    fn dumbbell_collapses_to_one_pod() {
        let topo = dumbbell(2, 2, GBPS);
        let pods = PodMap::new(&topo);
        assert_eq!(pods.num_pods(), 1);
        assert!(pods.is_pod_local(0, 3));
    }
}
