//! Path enumeration and flow-level ECMP.
//!
//! TAPS's Alg. 2 considers, for each flow, "all the possible paths" between
//! its endpoints and picks the one on which the flow completes earliest.
//! On the tree/fat-tree families of the paper, the possible paths are the
//! *valley-free* (up-then-down) simple paths; on arbitrary small graphs we
//! enumerate all shortest paths instead. Both enumerations are
//! deterministic, and both can be capped — when capped, the returned paths
//! are an evenly-spaced sample of the full enumeration so that a capped
//! TAPS still spreads load across the symmetric core of a fat-tree.

use crate::{NodeId, Path, RoutingMode, Topology};

/// SplitMix64 — a tiny, high-quality 64-bit mixer used for deterministic
/// flow-level ECMP hashing.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Path enumerator over a topology.
///
/// Construction is free; all state lives in the topology.
#[derive(Clone, Copy)]
pub struct PathFinder<'t> {
    topo: &'t Topology,
}

impl<'t> PathFinder<'t> {
    /// Creates a path finder over `topo`.
    pub fn new(topo: &'t Topology) -> Self {
        PathFinder { topo }
    }

    /// Enumerates candidate paths from `src` to `dst`, capped at
    /// `max_paths` (evenly sampled when the full enumeration is larger).
    /// Uses the topology's [`RoutingMode`]. Panics if `src == dst` or
    /// `max_paths == 0`; returns an empty vector only if the endpoints are
    /// disconnected — links and switches that are currently failed (see
    /// [`Topology::fail_link`]) are skipped, so under faults only the
    /// surviving paths are enumerated.
    pub fn paths(&self, src: NodeId, dst: NodeId, max_paths: usize) -> Vec<Path> {
        assert_ne!(src, dst, "flow endpoints must differ");
        assert!(max_paths > 0);
        let all = match self.topo.routing {
            RoutingMode::UpDown => self.up_down_paths(src, dst),
            RoutingMode::ShortestPath => self.shortest_paths(src, dst),
        };
        sample_evenly(all, max_paths)
    }

    /// Flow-level ECMP: deterministically picks one path among the
    /// candidates using `hash` (e.g. a flow id). This is how §V-A extends
    /// the single-path baselines to multi-rooted trees.
    pub fn ecmp(&self, src: NodeId, dst: NodeId, hash: u64) -> Option<Path> {
        const ECMP_FANOUT: usize = 64;
        let paths = self.paths(src, dst, ECMP_FANOUT);
        if paths.is_empty() {
            return None;
        }
        let i = (splitmix64(hash) % paths.len() as u64) as usize;
        Some(paths[i].clone())
    }

    /// All valley-free simple paths: strictly ascending levels from `src`,
    /// then strictly descending to `dst`. The apex may be at any level
    /// (for two hosts in the same rack the apex is their shared ToR).
    fn up_down_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        // All ascending walks from dst; for each endpoint (potential apex)
        // keep the list of *down* link sequences apex -> dst.
        let dst_up = self.ascending_walks(dst);
        let mut by_apex: Vec<(NodeId, Vec<Vec<crate::LinkId>>)> = Vec::new();
        for (apex, up_links) in &dst_up {
            // Reverse the walk: each up link dst->...->apex becomes a down
            // link apex->...->dst via the reverse link ids.
            let down: Vec<crate::LinkId> = up_links
                .iter()
                .rev()
                .map(|l| self.topo.link(*l).reverse)
                .collect();
            match by_apex.iter_mut().find(|(n, _)| *n == *apex) {
                Some((_, v)) => v.push(down),
                None => by_apex.push((*apex, vec![down])),
            }
        }

        let src_up = self.ascending_walks(src);
        let mut out = Vec::new();
        for (apex, up_links) in &src_up {
            let Some((_, downs)) = by_apex.iter().find(|(n, _)| n == apex) else {
                continue;
            };
            let up_nodes = self.walk_nodes(src, up_links);
            for down in downs {
                let down_nodes = self.down_nodes(*apex, down);
                // Simplicity check: apart from the apex, the two halves
                // must not share nodes (otherwise the path revisits a
                // node, e.g. host-tor-agg-tor-host inside one rack).
                if up_nodes
                    .iter()
                    .any(|n| *n != *apex && down_nodes.contains(n))
                {
                    continue;
                }
                let mut links = up_links.clone();
                links.extend_from_slice(down);
                out.push(Path { links });
            }
        }
        // Prefer shorter paths first, then enumeration order: Alg. 2
        // breaks completion-time ties by the first candidate, and a capped
        // enumeration should keep the direct paths.
        out.sort_by_key(|p| p.links.len());
        out
    }

    /// All strictly-ascending walks from `n`, *including* the trivial walk
    /// `(n, [])`. Returned as `(endpoint, links-from-n)` pairs.
    fn ascending_walks(&self, n: NodeId) -> Vec<(NodeId, Vec<crate::LinkId>)> {
        let mut out = vec![(n, Vec::new())];
        let mut frontier = vec![(n, Vec::new())];
        while let Some((node, links)) = frontier.pop() {
            let lvl = self.topo.node(node).level;
            for (next, link) in self.topo.neighbors(node) {
                if self.topo.is_link_up(*link) && self.topo.node(*next).level > lvl {
                    let mut nl = links.clone();
                    nl.push(*link);
                    out.push((*next, nl.clone()));
                    frontier.push((*next, nl));
                }
            }
        }
        out
    }

    /// Nodes visited by an ascending walk starting at `start`.
    fn walk_nodes(&self, start: NodeId, links: &[crate::LinkId]) -> Vec<NodeId> {
        let mut nodes = vec![start];
        for l in links {
            nodes.push(self.topo.link(*l).dst);
        }
        nodes
    }

    /// Nodes visited by a descending link sequence starting at `apex`,
    /// excluding the apex itself.
    fn down_nodes(&self, _apex: NodeId, links: &[crate::LinkId]) -> Vec<NodeId> {
        links.iter().map(|l| self.topo.link(*l).dst).collect()
    }

    /// All shortest paths from `src` to `dst` over the raw directed graph.
    fn shortest_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        // BFS from dst over *reverse* links gives dist-to-dst.
        let n = self.topo.num_nodes();
        let mut dist = vec![u32::MAX; n];
        dist[dst.idx()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for (v, link) in self.topo.neighbors(u) {
                // neighbors() lists outgoing links of u; since every cable
                // is duplex, v->u also exists, so v's dist via u is valid.
                // Fault state is cable-symmetric, so checking u's outgoing
                // direction also covers v->u.
                if self.topo.is_link_up(*link) && dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = dist[u.idx()] + 1;
                    queue.push_back(*v);
                }
            }
        }
        if dist[src.idx()] == u32::MAX {
            return Vec::new();
        }
        // DFS from src along strictly-decreasing dist.
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, Vec<crate::LinkId>)> = vec![(src, Vec::new())];
        while let Some((u, links)) = stack.pop() {
            if u == dst {
                out.push(Path { links });
                continue;
            }
            for (v, link) in self.topo.neighbors(u) {
                if self.topo.is_link_up(*link)
                    && dist[v.idx()] != u32::MAX
                    && dist[v.idx()] + 1 == dist[u.idx()]
                {
                    let mut nl = links.clone();
                    nl.push(*link);
                    stack.push((*v, nl));
                }
            }
        }
        out.sort_by(|a, b| a.links.cmp(&b.links));
        out
    }
}

/// Takes at most `max` elements, evenly spaced across the input, always
/// including the first element. Shared with the path cache so a cached
/// enumeration caps identically to a direct one.
pub(crate) fn sample_evenly<T>(mut v: Vec<T>, max: usize) -> Vec<T> {
    if v.len() <= max {
        return v;
    }
    let n = v.len();
    let mut keep = vec![false; n];
    for i in 0..max {
        keep[i * n / max] = true;
    }
    let mut idx = 0;
    v.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{
        dumbbell, fat_tree, fig3_star, partial_fat_tree_testbed, single_rooted, GBPS,
    };

    #[test]
    fn single_rooted_has_unique_paths() {
        let t = single_rooted(2, 2, 2, GBPS);
        let pf = PathFinder::new(&t);
        // Hosts in different pods: unique 6-hop path via the core.
        let p = pf.paths(t.host(0), t.host(7), 16);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 6);
        // Same rack: unique 2-hop path via the ToR.
        let p = pf.paths(t.host(0), t.host(1), 16);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 2);
        // Same pod, different rack: 4 hops via the aggregation switch.
        let p = pf.paths(t.host(0), t.host(2), 16);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 4);
    }

    #[test]
    fn paths_are_valid_walks() {
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        for (a, b) in [(0usize, 1usize), (0, 3), (0, 8), (5, 12)] {
            for p in pf.paths(t.host(a), t.host(b), 64) {
                let nodes = p.nodes(&t);
                assert_eq!(nodes.first().copied(), Some(t.host(a)));
                assert_eq!(nodes.last().copied(), Some(t.host(b)));
                // Consecutive links connect.
                for w in p.links.windows(2) {
                    assert_eq!(t.link(w[0]).dst, t.link(w[1]).src);
                }
                // Simple path: no repeated nodes.
                let mut sorted = nodes.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), nodes.len(), "path revisits a node: {nodes:?}");
            }
        }
    }

    #[test]
    fn fat_tree_path_multiplicity() {
        // k=4: inter-pod pairs have (k/2)^2 = 4 shortest up-down paths;
        // intra-pod inter-rack pairs have k/2 = 2; same-rack pairs have 1.
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        // hosts 0,1 share an edge switch; 0,2 share a pod; 0,8 are
        // inter-pod (each pod holds k^2/4 = 4 hosts).
        let shortest_counts = |a: usize, b: usize| {
            pf.paths(t.host(a), t.host(b), 1024)
                .iter()
                .map(|p| p.len())
                .collect::<Vec<_>>()
        };
        assert_eq!(shortest_counts(0, 1).iter().filter(|&&l| l == 2).count(), 1);
        assert_eq!(shortest_counts(0, 2).iter().filter(|&&l| l == 4).count(), 2);
        assert_eq!(shortest_counts(0, 4).iter().filter(|&&l| l == 6).count(), 4);
    }

    #[test]
    fn intra_pod_core_detours_are_rejected_as_non_simple() {
        // In a fat-tree, an intra-pod detour via the core must come back
        // down through the same aggregation switch it climbed, revisiting
        // it — so the only *simple* valley-free intra-pod paths are the
        // k/2 direct 4-hop ones.
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        let paths = pf.paths(t.host(0), t.host(2), 1024);
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![4, 4]);
    }

    #[test]
    fn capped_enumeration_samples_evenly() {
        let t = fat_tree(8, GBPS);
        let pf = PathFinder::new(&t);
        let all = pf.paths(t.host(0), t.host(t.num_hosts() - 1), 10_000);
        let capped = pf.paths(t.host(0), t.host(t.num_hosts() - 1), 4);
        assert_eq!(capped.len(), 4);
        assert!(all.len() > 4);
        // Every capped path is in the full enumeration.
        for p in &capped {
            assert!(all.contains(p));
        }
        // First (shortest, first-enumerated) path is kept.
        assert_eq!(capped[0], all[0]);
    }

    #[test]
    fn testbed_has_two_interpod_paths() {
        let t = partial_fat_tree_testbed(GBPS);
        let pf = PathFinder::new(&t);
        // hosts 0..3 are pod 0, hosts 4..7 pod 1.
        let p = pf.paths(t.host(0), t.host(4), 64);
        let shortest: Vec<_> = p.iter().filter(|p| p.len() == 6).collect();
        assert_eq!(shortest.len(), 2, "one path per core switch");
    }

    #[test]
    fn dumbbell_shortest_paths() {
        let t = dumbbell(2, 2, GBPS);
        let pf = PathFinder::new(&t);
        // host 0 (left) to host 2 (right): unique 3-hop path.
        let p = pf.paths(t.host(0), t.host(2), 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 3);
        // host 0 to host 1 (both left): 2-hop via the left switch.
        let p = pf.paths(t.host(0), t.host(1), 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 2);
    }

    #[test]
    fn fig3_star_paths() {
        let t = fig3_star(GBPS);
        let pf = PathFinder::new(&t);
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let p = pf.paths(t.host(a), t.host(b), 8);
                assert_eq!(p.len(), 1);
                assert_eq!(p[0].len(), 4, "host-edge-center-edge-host");
            }
        }
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        let (a, b) = (t.host(0), t.host(8));
        let p1 = pf.ecmp(a, b, 42).unwrap();
        let p2 = pf.ecmp(a, b, 42).unwrap();
        assert_eq!(p1, p2);
        // Across many hashes, more than one distinct path is used.
        let mut distinct = std::collections::HashSet::new();
        for h in 0..64u64 {
            distinct.insert(pf.ecmp(a, b, h).unwrap());
        }
        assert!(distinct.len() > 1, "ECMP should spread across paths");
    }

    #[test]
    fn failed_links_are_excluded_from_enumeration() {
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        let (a, b) = (t.host(0), t.host(8));
        let before = pf.paths(a, b, 1024);
        assert_eq!(before.iter().filter(|p| p.len() == 6).count(), 4);
        // Kill the ToR->agg hop of the first path (the host keeps its
        // uplink): every surviving candidate must avoid that cable (in
        // both directions).
        let dead = before[0].links[1];
        t.fail_link(dead);
        let after = pf.paths(a, b, 1024);
        assert!(!after.is_empty());
        assert!(after.len() < before.len());
        let rev = t.link(dead).reverse;
        for p in &after {
            assert!(!p.links.contains(&dead) && !p.links.contains(&rev));
        }
        t.restore_link(dead);
        assert_eq!(pf.paths(a, b, 1024), before);
    }

    #[test]
    fn host_uplink_failure_disconnects() {
        let t = single_rooted(2, 2, 2, GBPS);
        let pf = PathFinder::new(&t);
        // A single-rooted tree has exactly one path host->host; killing
        // the source's only uplink leaves no candidates.
        let p = pf.paths(t.host(0), t.host(7), 16);
        t.fail_link(p[0].links[0]);
        assert!(pf.paths(t.host(0), t.host(7), 16).is_empty());
        assert!(pf.ecmp(t.host(0), t.host(7), 1).is_none());
    }

    #[test]
    fn failed_links_excluded_from_bfs_shortest_paths() {
        let t = dumbbell(2, 2, GBPS);
        let pf = PathFinder::new(&t);
        let p = pf.paths(t.host(0), t.host(2), 8);
        assert_eq!(p.len(), 1);
        // The dumbbell's single cross-link is the only route between the
        // sides: failing any hop disconnects them.
        t.fail_link(p[0].links[1]);
        assert!(pf.paths(t.host(0), t.host(2), 8).is_empty());
        // Same-side routing is unaffected.
        assert_eq!(pf.paths(t.host(0), t.host(1), 8).len(), 1);
    }

    #[test]
    fn switch_failure_reroutes_around_it() {
        let t = fat_tree(4, GBPS);
        let pf = PathFinder::new(&t);
        let (a, b) = (t.host(0), t.host(8));
        let before = pf.paths(a, b, 1024);
        // Fail the aggregation switch the first path climbs through
        // (third node on the path: host, tor, agg).
        let agg = before[0].nodes(&t)[2];
        assert!(t.node(agg).kind.is_switch());
        t.fail_switch(agg);
        let after = pf.paths(a, b, 1024);
        assert!(!after.is_empty());
        for p in &after {
            assert!(!p.nodes(&t).contains(&agg));
        }
    }

    #[test]
    fn sample_evenly_behaviour() {
        let v: Vec<u32> = (0..10).collect();
        assert_eq!(sample_evenly(v.clone(), 20), v);
        let s = sample_evenly(v.clone(), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], 0);
        let s1 = sample_evenly(v, 1);
        assert_eq!(s1, vec![0]);
    }
}
