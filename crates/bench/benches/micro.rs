//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! the interval algebra, the max-min water-filling, TAPS admission
//! (Alg. 1–3), path enumeration and end-to-end simulation runs. These
//! quantify the controller-side cost the paper argues is affordable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taps_baselines::max_min_rates;
use taps_core::{AllocMode, FlowDemand, SlotAllocator, Taps, TapsConfig};
use taps_flowsim::{SimConfig, Simulation};
use taps_timeline::IntervalSet;
use taps_topology::build::{fat_tree, single_rooted, GBPS};
use taps_topology::paths::PathFinder;
use taps_workload::WorkloadConfig;

fn bench_interval_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_set");
    for n in [64u64, 1024, 16384] {
        // A fragmented busy set: every other slot occupied.
        let busy = IntervalSet::from_intervals(
            (0..n).map(|i| taps_timeline::Interval::new(2 * i, 2 * i + 1)),
        );
        g.bench_with_input(
            BenchmarkId::new("allocate_first_free", n),
            &busy,
            |b, busy| {
                b.iter(|| black_box(busy.allocate_first_free(black_box(3), 64)));
            },
        );
        let other = IntervalSet::from_range(n / 2, n * 3 / 2);
        g.bench_with_input(BenchmarkId::new("union", n), &busy, |b, busy| {
            b.iter(|| black_box(busy.union(&other)));
        });
    }
    g.finish();
}

fn bench_max_min(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_min_rates");
    let topo = single_rooted(4, 4, 4, GBPS);
    let pf = PathFinder::new(&topo);
    for flows in [64usize, 512, 2048] {
        let paths: Vec<_> = (0..flows)
            .map(|i| {
                let a = i % topo.num_hosts();
                let b = (i * 7 + 13) % topo.num_hosts();
                let b = if a == b {
                    (b + 1) % topo.num_hosts()
                } else {
                    b
                };
                pf.paths(topo.host(a), topo.host(b), 1)[0].clone()
            })
            .collect();
        let input: Vec<(usize, &taps_topology::Path)> = paths.iter().enumerate().collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &input, |b, input| {
            b.iter(|| black_box(max_min_rates(&topo, input)));
        });
    }
    g.finish();
}

fn bench_taps_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("taps_admission");
    g.sample_size(10);
    let topo = single_rooted(4, 4, 4, GBPS);
    for flows in [64usize, 256, 1024] {
        // One batch allocation of `flows` demands — the controller work
        // per task arrival (Alg. 1's dominant cost).
        let demands: Vec<FlowDemand> = (0..flows)
            .map(|i| {
                let src = i % topo.num_hosts();
                let dst = (i * 11 + 3) % topo.num_hosts();
                let dst = if src == dst {
                    (dst + 1) % topo.num_hosts()
                } else {
                    dst
                };
                FlowDemand {
                    id: i,
                    src,
                    dst,
                    remaining: 200_000.0,
                    deadline: 0.040,
                }
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(flows),
            &demands,
            |b, demands| {
                b.iter(|| {
                    let mut alloc = SlotAllocator::new(&topo, 0.0001, 4);
                    black_box(alloc.allocate_batch(demands, 0))
                });
            },
        );
    }
    g.finish();
}

/// Legacy (per-call path enumeration, allocating interval folds) vs the
/// fast re-allocation engine (path cache + scratch buffers + pruned,
/// possibly parallel candidate evaluation) on a fat-tree where the
/// candidate budget is large enough for the differences to matter.
fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission");
    g.sample_size(10);
    let topo = fat_tree(8, GBPS);
    let hosts = topo.num_hosts();
    let demands: Vec<FlowDemand> = (0..256usize)
        .map(|i| {
            let src = i % hosts;
            let dst = (i * 11 + 3) % hosts;
            let dst = if src == dst { (dst + 1) % hosts } else { dst };
            FlowDemand {
                id: i,
                src,
                dst,
                remaining: 200_000.0,
                deadline: 0.040,
            }
        })
        .collect();
    for (name, mode) in [("legacy", AllocMode::Legacy), ("fast", AllocMode::Fast)] {
        g.bench_with_input(
            BenchmarkId::new(name, demands.len()),
            &demands,
            |b, demands| {
                // Persistent allocator: the path cache warms on the first
                // batch and is reused across iterations, exactly as the
                // controller reuses it across task arrivals.
                let mut alloc = SlotAllocator::new(&topo, 0.0001, 64);
                alloc.engine_mut().set_mode(mode);
                b.iter(|| {
                    alloc.reset();
                    black_box(alloc.allocate_batch(demands, 0))
                });
            },
        );
    }
    g.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_enumeration");
    for k in [4usize, 8, 16] {
        let topo = fat_tree(k, GBPS);
        let pf = PathFinder::new(&topo);
        let (a, b) = (topo.host(0), topo.host(topo.num_hosts() - 1));
        g.bench_with_input(BenchmarkId::new("interpod_all", k), &topo, |bch, _| {
            bch.iter(|| black_box(pf.paths(a, b, 4096).len()));
        });
        g.bench_with_input(BenchmarkId::new("ecmp_pick", k), &topo, |bch, _| {
            bch.iter(|| black_box(pf.ecmp(a, b, 42)));
        });
    }
    g.finish();
}

fn bench_end_to_end_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_sim");
    g.sample_size(10);
    let topo = single_rooted(3, 3, 4, GBPS);
    let cfg = WorkloadConfig {
        num_tasks: 10,
        mean_flows_per_task: 12.0,
        sd_flows_per_task: 3.0,
        ..WorkloadConfig::paper_single_rooted(topo.num_hosts(), 7)
    };
    let wl = cfg.generate();
    for name in ["FairSharing", "PDQ", "TAPS"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let mut s = taps_bench::make_scheduler(name);
                let cfg = SimConfig {
                    validate_capacity: false,
                    ..SimConfig::default()
                };
                black_box(Simulation::new(&topo, &wl, cfg).run(s.as_mut()))
            });
        });
    }
    g.finish();
}

fn bench_taps_full_run_slot_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("taps_slot_cost");
    g.sample_size(10);
    let topo = single_rooted(3, 3, 4, GBPS);
    let cfg = WorkloadConfig {
        num_tasks: 8,
        mean_flows_per_task: 12.0,
        sd_flows_per_task: 0.0,
        ..WorkloadConfig::paper_single_rooted(topo.num_hosts(), 3)
    };
    let wl = cfg.generate();
    for slot_us in [50u64, 100, 400] {
        g.bench_with_input(
            BenchmarkId::from_parameter(slot_us),
            &slot_us,
            |b, &slot_us| {
                b.iter(|| {
                    let mut taps = Taps::with_config(TapsConfig {
                        slot: slot_us as f64 / 1e6,
                        ..TapsConfig::default()
                    });
                    let cfg = SimConfig {
                        validate_capacity: false,
                        ..SimConfig::default()
                    };
                    black_box(Simulation::new(&topo, &wl, cfg).run(&mut taps))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_interval_set,
    bench_max_min,
    bench_taps_admission,
    bench_admission,
    bench_path_enumeration,
    bench_end_to_end_sim,
    bench_taps_full_run_slot_sensitivity
);
criterion_main!(benches);
