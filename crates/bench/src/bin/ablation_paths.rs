//! Ablation — Alg. 2's candidate-path budget on the fat-tree: 1, 4, 16
//! and 64 candidate paths. Shows the value of TAPS's multipath routing
//! (budget 1 reduces Alg. 2 to single-path scheduling).
//!
//! Usage: `ablation_paths [--scale tiny|small|paper] [--seeds N]`

use taps_bench::{run_jobs, workload_fat_tree, Args};
use taps_core::RejectPolicy;
use taps_flowsim::{SimConfig, Simulation};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.fat_tree_topo();
    eprintln!(
        "ablation_paths: {} ({} hosts), {seeds} seed(s)",
        topo.name,
        topo.num_hosts()
    );

    let budgets = [1usize, 4, 16, 64];
    println!("TAPS candidate-path budget ablation — task completion ratio (fat-tree)");
    print!("{:>12}", "deadline/ms");
    for b in budgets {
        print!("{:>12}", format!("paths={b}"));
    }
    println!();

    for deadline_ms in (20..=60).step_by(10) {
        let workloads: Vec<_> = (0..seeds as u64)
            .map(|seed| {
                let mut cfg = workload_fat_tree(scale, &topo, seed);
                cfg.mean_deadline = deadline_ms as f64 / 1000.0;
                cfg.generate()
            })
            .collect();
        let jobs: Vec<(usize, usize)> = (0..budgets.len())
            .flat_map(|b| (0..workloads.len()).map(move |w| (b, w)))
            .collect();
        let results = run_jobs(&jobs, |&(b, w)| {
            let mut taps = taps_bench::make_taps(RejectPolicy::Paper, budgets[b], 0.0001);
            let cfg = SimConfig {
                validate_capacity: false,
                ..SimConfig::default()
            };
            let rep = Simulation::new(&topo, &workloads[w], cfg).run(taps.as_mut());
            (b, rep.task_completion_ratio())
        });
        print!("{deadline_ms:>12}");
        for b in 0..budgets.len() {
            let mine: Vec<f64> = results
                .iter()
                .filter(|(bi, _)| *bi == b)
                .map(|(_, t)| *t)
                .collect();
            print!("{:>12.4}", mine.iter().sum::<f64>() / mine.len() as f64);
        }
        println!();
    }
}
