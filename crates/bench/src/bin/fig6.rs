//! Fig. 6 — impact of task urgency (single-rooted tree): application
//! throughput (a) and task completion ratio (b) while the mean flow
//! deadline sweeps 20–60 ms.
//!
//! Usage: `fig6 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "fig6: {} ({} hosts), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for deadline_ms in (20..=60).step_by(5) {
        let r = run_point(&topo, deadline_ms as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.mean_deadline = deadline_ms as f64 / 1000.0;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  deadline {deadline_ms} ms done");
        rows.extend(r);
    }
    print_table(
        "Fig. 6(a) — application throughput (task-size-weighted) vs mean deadline (ms)",
        "deadline/ms",
        &rows,
        |r| r.app_task_throughput,
    );
    print_table(
        "Fig. 6(b) — task completion ratio vs mean deadline (ms)",
        "deadline/ms",
        &rows,
        |r| r.task_completion,
    );
    print_table(
        "supplementary — flow-granularity application throughput",
        "deadline/ms",
        &rows,
        |r| r.app_throughput,
    );
    if args.has_flag("chart") {
        taps_bench::print_chart("Fig. 6(b) chart", &rows, |r| r.task_completion);
    }
    maybe_write_json(&args, &rows);
}
