//! Ablation — TAPS vs the exact optimum on randomized single-bottleneck
//! instances (the brute-force oracle of `taps-core::oracle`). Quantifies
//! the paper's "near-optimal" claim with a distribution of per-instance
//! gaps.
//!
//! Usage: `ablation_optimality [--instances N]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taps_bench::Args;
use taps_core::{SingleLinkOracle, Taps, TapsConfig};
use taps_flowsim::{SimConfig, Simulation, Workload};
use taps_topology::build::{dumbbell, GBPS};

fn instance(seed: u64) -> (Workload, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_tasks = rng.gen_range(2..=7);
    let mut next = 0usize;
    let mut tasks = Vec::new();
    for _ in 0..num_tasks {
        let arrival = rng.gen_range(0..5) as f64;
        let rel = rng.gen_range(2..9) as f64;
        let nflows = rng.gen_range(1..=2);
        let mut flows = Vec::new();
        for _ in 0..nflows {
            flows.push((next, next, rng.gen_range(1..=3) as f64 * GBPS));
            next += 1;
        }
        tasks.push((arrival, arrival + rel, flows));
    }
    (Workload::from_tasks(tasks), next)
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("instances", 200);
    let mut hist = [0usize; 4]; // gap of 0, 1, 2, >=3 tasks
    let (mut taps_total, mut opt_total) = (0usize, 0usize);
    for seed in 0..n as u64 {
        let (mut wl, hosts) = instance(seed);
        let topo = dumbbell(hosts, hosts, GBPS);
        for (i, f) in wl.flows.iter_mut().enumerate() {
            f.src = i;
            f.dst = hosts + i;
        }
        let opt = SingleLinkOracle::from_workload(&wl, GBPS).max_tasks();
        let mut taps = Taps::with_config(TapsConfig {
            slot: 1.0,
            ..TapsConfig::default()
        });
        let cfg = SimConfig {
            validate_capacity: false,
            ..SimConfig::default()
        };
        let got = Simulation::new(&topo, &wl, cfg)
            .run(&mut taps)
            .tasks_completed;
        assert!(
            got <= opt,
            "seed {seed}: TAPS {got} beats the optimum {opt}?!"
        );
        hist[(opt - got).min(3)] += 1;
        taps_total += got;
        opt_total += opt;
    }
    println!("TAPS vs exact optimum on {n} random single-bottleneck instances");
    println!(
        "  optimal on        {:>5} instances ({:.1}%)",
        hist[0],
        100.0 * hist[0] as f64 / n as f64
    );
    println!("  1 task short on   {:>5} instances", hist[1]);
    println!("  2 tasks short on  {:>5} instances", hist[2]);
    println!("  >=3 tasks short   {:>5} instances", hist[3]);
    println!(
        "  aggregate: TAPS {taps_total} / optimal {opt_total} = {:.3}",
        taps_total as f64 / opt_total as f64
    );
}
