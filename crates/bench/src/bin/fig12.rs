//! Fig. 12 — impact of task diffusion: task completion ratio while the
//! number of tasks sweeps 30–270.
//!
//! Usage: `fig12 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "fig12: {} ({} hosts), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for tasks in (30..=270).step_by(30) {
        let r = run_point(&topo, tasks as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.num_tasks = tasks;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  {tasks} tasks done");
        rows.extend(r);
    }
    print_table(
        "Fig. 12 — task completion ratio vs task count",
        "tasks",
        &rows,
        |r| r.task_completion,
    );
    maybe_write_json(&args, &rows);
}
