//! Ablation — slot granularity of the TAPS timeline: 0.025–0.8 ms.
//! Coarse slots waste capacity to `ceil` rounding and delay admissions
//! (Alg. 1 batches at slot boundaries); very fine slots only cost
//! controller CPU (measured in the Criterion benches).
//!
//! Usage: `ablation_slots [--scale tiny|small|paper] [--seeds N]`

use taps_bench::{run_jobs, workload_single_rooted, Args};
use taps_core::RejectPolicy;
use taps_flowsim::{SimConfig, Simulation};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "ablation_slots: {} ({} hosts), {seeds} seed(s)",
        topo.name,
        topo.num_hosts()
    );

    let slots_ms = [0.025f64, 0.05, 0.1, 0.2, 0.4, 0.8];
    println!("TAPS slot-granularity ablation — task completion ratio");
    print!("{:>12}", "deadline/ms");
    for s in slots_ms {
        print!("{:>12}", format!("{s}ms"));
    }
    println!();

    for deadline_ms in (20..=60).step_by(20) {
        let workloads: Vec<_> = (0..seeds as u64)
            .map(|seed| {
                let mut cfg = workload_single_rooted(scale, &topo, seed);
                cfg.mean_deadline = deadline_ms as f64 / 1000.0;
                cfg.generate()
            })
            .collect();
        let jobs: Vec<(usize, usize)> = (0..slots_ms.len())
            .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
            .collect();
        let results = run_jobs(&jobs, |&(s, w)| {
            let mut taps = taps_bench::make_taps(RejectPolicy::Paper, 16, slots_ms[s] / 1000.0);
            let cfg = SimConfig {
                validate_capacity: false,
                ..SimConfig::default()
            };
            let rep = Simulation::new(&topo, &workloads[w], cfg).run(taps.as_mut());
            (s, rep.task_completion_ratio())
        });
        print!("{deadline_ms:>12}");
        for s in 0..slots_ms.len() {
            let mine: Vec<f64> = results
                .iter()
                .filter(|(si, _)| *si == s)
                .map(|(_, t)| *t)
                .collect();
            print!("{:>12.4}", mine.iter().sum::<f64>() / mine.len() as f64);
        }
        println!();
    }
}
