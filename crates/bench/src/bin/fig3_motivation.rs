//! Fig. 3 — global scheduling vs PDQ on the 4-host star topology.
//!
//! Flows: f1 (h1→h2, 1, d1), f2 (h1→h4, 1, d2), f3 (h3→h2, 1, d2),
//! f4 (h3→h4, 2, d3). PDQ with a full flow list at S3 completes 3 flows;
//! TAPS's global slotted schedule completes all 4 (f4 in slices
//! (0,1) ∪ (2,3), matching the paper's optimal table).

use taps_baselines::{Pdq, PdqConfig};
use taps_core::{Taps, TapsConfig};
use taps_flowsim::{SimConfig, Simulation, Workload};
use taps_topology::build::{fig3_star, GBPS};

fn main() {
    let topo = fig3_star(GBPS);
    let u = GBPS;
    let wl = Workload::from_tasks(vec![
        (0.0, 1.0, vec![(0, 1, u)]),
        (0.0, 2.0, vec![(0, 3, u)]),
        (0.0, 2.0, vec![(2, 1, u)]),
        (0.0, 3.0, vec![(2, 3, 2.0 * u)]),
    ]);
    // PDQ with the paper's "flow list at S3 is full" assumption: a
    // 1-entry list at S3 (node 5 = the edge switch of host 3).
    let mut pdq = Pdq::with_config(PdqConfig {
        flow_list_limit_at: vec![(taps_topology::NodeId(5), 1)],
        ..PdqConfig::default()
    });
    let mut taps = Taps::with_config(TapsConfig {
        slot: 1.0,
        ..TapsConfig::default()
    });

    println!("Fig. 3 — global scheduling vs PDQ (4 flows on the S1..S5 star)");
    println!("{:>20} {:>16}", "scheduler", "flows on time");
    let rep = Simulation::new(&topo, &wl, SimConfig::default()).run(&mut pdq);
    println!("{:>20} {:>16}", "PDQ (S3 list full)", rep.flows_on_time);
    let rep = Simulation::new(&topo, &wl, SimConfig::default()).run(&mut taps);
    println!("{:>20} {:>16}", "TAPS (global)", rep.flows_on_time);
    if let Some(al) = taps.schedule_of(3) {
        println!(
            "\nTAPS slices for f4: {:?} (paper optimum: (0,1) & (2,3))",
            al.slices
        );
    }
    println!("paper: PDQ completes 3 flows, global scheduling completes 4");
}
