//! Extension experiment (beyond the paper's evaluation set): D2TCP —
//! discussed in §II but not evaluated there — against Fair Sharing, D3
//! and TAPS on the Fig. 6 deadline sweep. Expected shape: D2TCP lands
//! between Fair Sharing and D3 (deadline-aware but gentle and purely
//! flow-level), and far below TAPS at task granularity — §II's point
//! that "the limitation of flow-level scheduling cannot minimize the
//! deadline-missing tasks".
//!
//! Usage: `extension_d2tcp [--scale tiny|small|paper] [--seeds N]`

use taps_baselines::{D2tcp, FairSharing, D3};
use taps_bench::{run_jobs, workload_single_rooted, Args};
use taps_core::Taps;
use taps_flowsim::{Scheduler, SimConfig, Simulation};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "extension_d2tcp: {} ({} hosts), {seeds} seed(s)",
        topo.name,
        topo.num_hosts()
    );

    let names = ["FairSharing", "D2TCP", "D3", "TAPS"];
    println!("D2TCP extension — task completion ratio / flow completion ratio");
    print!("{:>12}", "deadline/ms");
    for n in names {
        print!("{n:>22}");
    }
    println!();

    for deadline_ms in (20..=60).step_by(10) {
        let workloads: Vec<_> = (0..seeds as u64)
            .map(|seed| {
                let mut cfg = workload_single_rooted(scale, &topo, seed);
                cfg.mean_deadline = deadline_ms as f64 / 1000.0;
                cfg.generate()
            })
            .collect();
        let jobs: Vec<(usize, usize)> = (0..names.len())
            .flat_map(|n| (0..workloads.len()).map(move |w| (n, w)))
            .collect();
        let results = run_jobs(&jobs, |&(n, w)| {
            let mut s: Box<dyn Scheduler + Send> = match names[n] {
                "FairSharing" => Box::new(FairSharing::new()),
                "D2TCP" => Box::new(D2tcp::new()),
                "D3" => Box::new(D3::new()),
                _ => Box::new(Taps::new()),
            };
            let cfg = SimConfig {
                validate_capacity: false,
                ..SimConfig::default()
            };
            let rep = Simulation::new(&topo, &workloads[w], cfg).run(s.as_mut());
            (n, rep.task_completion_ratio(), rep.flow_completion_ratio())
        });
        print!("{deadline_ms:>12}");
        for n in 0..names.len() {
            let mine: Vec<_> = results.iter().filter(|(ni, _, _)| *ni == n).collect();
            let c = mine.len() as f64;
            let t: f64 = mine.iter().map(|(_, t, _)| t).sum::<f64>() / c;
            let fl: f64 = mine.iter().map(|(_, _, f)| f).sum::<f64>() / c;
            print!("{:>13.4} / {:>6.4}", t, fl);
        }
        println!();
    }
}
