//! Fig. 7 — task completion ratio vs mean deadline on the multi-rooted
//! fat-tree (ECMP for the baselines, Alg. 2 multipath for TAPS).
//!
//! Usage: `fig7 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_fat_tree, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.fat_tree_topo();
    eprintln!(
        "fig7: {} ({} hosts), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for deadline_ms in (20..=60).step_by(5) {
        let r = run_point(&topo, deadline_ms as f64, seeds, |seed| {
            let mut cfg = workload_fat_tree(scale, &topo, seed);
            cfg.mean_deadline = deadline_ms as f64 / 1000.0;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  deadline {deadline_ms} ms done");
        rows.extend(r);
    }
    print_table(
        "Fig. 7 — task completion ratio vs mean deadline (ms), multi-rooted",
        "deadline/ms",
        &rows,
        |r| r.task_completion,
    );
    if args.has_flag("chart") {
        taps_bench::print_chart("Fig. 7 chart", &rows, |r| r.task_completion);
    }
    maybe_write_json(&args, &rows);
}
