//! Fig. 1 — task-level vs flow-level scheduling on one bottleneck link.
//!
//! Reproduces the paper's walk-through: 2 tasks × 2 flows, sizes
//! (2,4 | 1,3) time units, all deadlines 4. Prints, per scheduler, the
//! flows/tasks completed before deadline (paper: Fair Sharing 1/0,
//! D3 1/0, PDQ 2/0, task-aware 2/1), and exports a per-scheduler
//! metrics registry to `results/METRICS_fig1.json`.

use std::sync::Arc;
use taps_baselines::{FairSharing, Pdq, D3};
use taps_core::{Taps, TapsConfig};
use taps_flowsim::{Scheduler, SimConfig, Simulation, Workload};
use taps_obs::{Metrics, RingRecorder};
use taps_topology::build::{dumbbell, GBPS};

fn workload() -> Workload {
    let u = GBPS; // one size unit = one second at line rate
    Workload::from_tasks(vec![
        (0.0, 4.0, vec![(0, 4, 2.0 * u), (1, 5, 4.0 * u)]),
        (0.0, 4.0, vec![(2, 6, 1.0 * u), (3, 7, 3.0 * u)]),
    ])
}

fn main() {
    let topo = dumbbell(4, 4, GBPS);
    let wl = workload();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FairSharing::new()),
        Box::new(D3::new()),
        Box::new(Pdq::new()),
        Box::new(Taps::with_config(TapsConfig {
            slot: 1.0,
            ..TapsConfig::default()
        })),
    ];
    println!("Fig. 1 — task-level vs flow-level scheduling (2 tasks x 2 flows, one bottleneck)");
    println!(
        "{:>14} {:>16} {:>16}",
        "scheduler", "flows on time", "tasks completed"
    );
    let mut metrics = Metrics::new();
    for s in &mut schedulers {
        let ring = Arc::new(RingRecorder::new());
        let rep = Simulation::new(&topo, &wl, SimConfig::default())
            .with_trace_sink(ring.clone())
            .run(s.as_mut());
        println!(
            "{:>14} {:>16} {:>16}",
            rep.scheduler, rep.flows_on_time, rep.tasks_completed
        );
        // Fold the run's trace-derived counters into one registry,
        // namespaced by scheduler.
        for (key, n) in Metrics::from_trace(&ring.drain()).counters() {
            metrics.add(&format!("{key}/{}", rep.scheduler), n);
        }
        metrics.add(
            &format!("flows_on_time/{}", rep.scheduler),
            rep.flows_on_time as u64,
        );
        metrics.add(
            &format!("tasks_completed/{}", rep.scheduler),
            rep.tasks_completed as u64,
        );
    }
    let out = std::path::Path::new("results/METRICS_fig1.json");
    metrics
        .write(out)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
    println!("\npaper: FairSharing 1/0, D3 1/0, PDQ 2/0, task-aware (TAPS) 2/1");
}
