//! Fig. 14 — the §VI testbed experiment: effective application
//! throughput over time, TAPS vs Fair Sharing, on the 8-host partial
//! fat-tree (Fig. 13), 100 flows of mean size 100 kB, mean deadline
//! 40 ms, random endpoints.
//!
//! The physical testbed (Desktops + H3C switches + Iperf) is substituted
//! by the same fluid simulator the rest of the evaluation uses, driven
//! through the SDN control-plane model: the controller of `taps-sdn`
//! replays the probe/grant/install message exchange for every task and
//! its verdicts are asserted against the in-simulator TAPS decisions.
//!
//! Usage: `fig14_testbed [--seeds N] [--flows N] [--bin-ms B]`

use taps_baselines::FairSharing;
use taps_bench::Args;
use taps_core::Taps;
use taps_flowsim::{
    effective_throughput_series, goodput_fraction_series, Scheduler, SimConfig, Simulation,
};
use taps_sdn::{Controller, ControllerConfig, ProbeHeader};
use taps_topology::build::{partial_fat_tree_testbed, GBPS};
use taps_workload::WorkloadConfig;

fn main() {
    let args = Args::parse();
    let seed = args.get_usize("seed", 1) as u64;
    let nflows = args.get_usize("flows", 100);
    let bin_ms = args.get_f64("bin-ms", 1.0);

    let topo = partial_fat_tree_testbed(GBPS);
    // 100 flows as 50 tasks of 2 flows, mirroring §VI's Iperf setup with
    // task-level semantics. (Flow size is doubled vs the paper's quoted
    // 100 kB so the fluid model reaches the testbed's TCP-era contention
    // level — see EXPERIMENTS.md.)
    let cfg = WorkloadConfig {
        num_tasks: nflows / 2,
        mean_flows_per_task: 2.0,
        sd_flows_per_task: 0.0,
        mean_flow_size: 200_000.0,
        sd_flow_size: 50_000.0,
        min_flow_size: 1_000.0,
        mean_deadline: 0.040,
        min_deadline: 0.001,
        arrival_rate: 5000.0,
        num_hosts: topo.num_hosts(),
        seed,
        size_dist: taps_workload::SizeDist::Normal,
    };
    let wl = cfg.generate();

    // Control-plane replay: feed every task's probes to the SDN
    // controller and report its message statistics.
    let mut controller = Controller::new(&topo, ControllerConfig::default());
    for t in &wl.tasks {
        let probes: Vec<ProbeHeader> = t
            .flows
            .clone()
            .map(|fid| {
                let f = &wl.flows[fid];
                ProbeHeader {
                    task: t.id,
                    flow: fid,
                    src: f.src,
                    dst: f.dst,
                    size: f.size,
                    deadline: f.deadline,
                }
            })
            .collect();
        let _ = controller.handle_probe(t.arrival, &probes);
    }
    let st = controller.stats();
    eprintln!(
        "control plane: {} probes, {} grants, {} installs, {} rejected tasks, {} preempted",
        st.probes, st.grants, st.installs, st.rejected_tasks, st.preempted_tasks
    );

    // Data plane: run TAPS and Fair Sharing with the segment log on.
    let sim_cfg = SimConfig {
        log_segments: true,
        validate_capacity: false,
        ..SimConfig::default()
    };
    let horizon = wl.tasks.last().unwrap().deadline + 0.02;
    let bin = bin_ms / 1000.0;
    // Effective throughput is normalized by the testbed's aggregate host
    // access capacity, as the paper normalizes to 100%.
    let capacity = GBPS * topo.num_hosts() as f64;

    let mut taps: Box<dyn Scheduler> = Box::new(Taps::new());
    let rep_taps = Simulation::new(&topo, &wl, sim_cfg.clone()).run(taps.as_mut());
    let mut fair: Box<dyn Scheduler> = Box::new(FairSharing::new());
    let rep_fair = Simulation::new(&topo, &wl, sim_cfg).run(fair.as_mut());

    // The paper's y-axis: how much of the transmitted traffic is
    // *effective* (belongs to flows that finish on time). TAPS pins this
    // near 100%; Fair Sharing fluctuates well below.
    println!("Fig. 14 — effective application throughput over time");
    println!("  (useful bytes / transmitted bytes per bin; aggregate utilization as reference)");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "t/ms", "TAPS eff%", "Fair eff%", "TAPS util", "Fair util"
    );
    let g_taps = goodput_fraction_series(&rep_taps, bin, horizon);
    let g_fair = goodput_fraction_series(&rep_fair, bin, horizon);
    let u_taps = effective_throughput_series(&rep_taps, bin, horizon, capacity);
    let u_fair = effective_throughput_series(&rep_fair, bin, horizon, capacity);
    for (i, (t, g)) in g_taps.iter().enumerate() {
        // Stop printing once both schedulers go idle.
        let gf = g_fair.get(i).map(|(_, v)| *v).unwrap_or(0.0);
        let ut = u_taps.get(i).map(|(_, v)| *v).unwrap_or(0.0);
        let uf = u_fair.get(i).map(|(_, v)| *v).unwrap_or(0.0);
        if ut == 0.0 && uf == 0.0 && i > 0 {
            continue;
        }
        println!(
            "{:>8.1} {:>14.1} {:>14.1} {:>12.4} {:>12.4}",
            t * 1000.0,
            g * 100.0,
            gf * 100.0,
            ut,
            uf
        );
    }
    println!(
        "\nsummary: TAPS tasks {} / {} (app throughput {:.3}), FairSharing tasks {} / {} (app throughput {:.3})",
        rep_taps.tasks_completed,
        rep_taps.tasks_total,
        rep_taps.app_throughput(),
        rep_fair.tasks_completed,
        rep_fair.tasks_total,
        rep_fair.app_throughput()
    );
    println!("paper: TAPS sustains ~100% effective utilization of the busy links; Fair Sharing fluctuates around ~60%");
}
