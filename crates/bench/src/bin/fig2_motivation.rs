//! Fig. 2 — existing task-level scheduling vs TAPS.
//!
//! 2 tasks × 2 flows on one bottleneck: t1 = (1,4),(1,4); t2 = (1,2),(1,2)
//! arriving together. Paper: Baraat fails the urgent task, Varys rejects
//! it (no preemption, 1 task), TAPS completes both.

use taps_baselines::{Baraat, Varys};
use taps_core::{Taps, TapsConfig};
use taps_flowsim::{Scheduler, SimConfig, Simulation, Workload};
use taps_topology::build::{dumbbell, GBPS};

fn main() {
    let topo = dumbbell(4, 4, GBPS);
    let u = GBPS;
    let wl = Workload::from_tasks(vec![
        (0.0, 4.0, vec![(0, 4, u), (1, 5, u)]),
        (0.0, 2.0, vec![(2, 6, u), (3, 7, u)]),
    ]);
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Baraat::new()),
        Box::new(Varys::new()),
        Box::new(Taps::with_config(TapsConfig {
            slot: 1.0,
            ..TapsConfig::default()
        })),
    ];
    println!("Fig. 2 — existing task-level scheduling vs TAPS");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "scheduler", "flows on time", "tasks completed", "wasted ratio"
    );
    for s in &mut schedulers {
        let rep = Simulation::new(&topo, &wl, SimConfig::default()).run(s.as_mut());
        println!(
            "{:>10} {:>16} {:>16} {:>16.3}",
            rep.scheduler,
            rep.flows_on_time,
            rep.tasks_completed,
            rep.wasted_bandwidth_ratio()
        );
    }
    println!("\npaper: Baraat fails the urgent task, Varys completes 1 task, TAPS completes 2");
}
