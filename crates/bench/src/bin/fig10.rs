//! Fig. 10 — near-optimality at flow granularity: every task has exactly
//! one flow (task ≡ flow, so task completion ratio ≡ flow completion
//! ratio), with one task per host (the paper runs 36 000 tasks on the
//! 36 000-host tree). Sweeps the mean flow size like Fig. 9.
//!
//! Usage: `fig10 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    let tasks = topo.num_hosts();
    eprintln!(
        "fig10: {} ({} hosts, {} single-flow tasks), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts(),
        tasks
    );

    let mut rows: Vec<Row> = Vec::new();
    for size_kb in (60..=300).step_by(30) {
        let r = run_point(&topo, size_kb as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.num_tasks = tasks;
            cfg.mean_flows_per_task = 1.0;
            cfg.sd_flows_per_task = 0.0;
            cfg.mean_flow_size = size_kb as f64 * 1000.0;
            cfg.sd_flow_size = cfg.mean_flow_size / 4.0;
            // One task per host, arriving fast enough that the total
            // demand contends at the core (~the transmission time of the
            // aggregate traffic through the pod links).
            cfg.arrival_rate = args.get_f64("rate", 25.0 * tasks as f64);
            cfg.generate()
        });
        eprintln!("  size {size_kb} kB done");
        rows.extend(r);
    }
    print_table(
        "Fig. 10 — flow completion ratio (single-flow tasks) vs size (kB)",
        "size/kB",
        &rows,
        |r| r.flow_completion,
    );
    maybe_write_json(&args, &rows);
}
