//! Fig. 9 — impact of task duration (single-rooted tree): application
//! throughput (a) and task completion ratio (b) while the mean flow size
//! sweeps 60–300 kB.
//!
//! Usage: `fig9 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "fig9: {} ({} hosts), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for size_kb in (60..=300).step_by(30) {
        let r = run_point(&topo, size_kb as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.mean_flow_size = size_kb as f64 * 1000.0;
            cfg.sd_flow_size = cfg.mean_flow_size / 4.0;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  size {size_kb} kB done");
        rows.extend(r);
    }
    print_table(
        "Fig. 9(a) — application throughput (task-size-weighted) vs mean flow size (kB)",
        "size/kB",
        &rows,
        |r| r.app_task_throughput,
    );
    print_table(
        "Fig. 9(b) — task completion ratio vs mean flow size (kB)",
        "size/kB",
        &rows,
        |r| r.task_completion,
    );
    if args.has_flag("chart") {
        taps_bench::print_chart("Fig. 9(b) chart", &rows, |r| r.task_completion);
    }
    maybe_write_json(&args, &rows);
}
