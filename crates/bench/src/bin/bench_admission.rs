//! Admission-latency benchmark for the fast + delta re-allocation
//! engines.
//!
//! Replays a Poisson stream of task arrivals against a persistent
//! allocator: each arrival adds a task's flows to the active set and
//! triggers the full re-allocation TAPS performs per arrival (Alg. 1).
//! Wall-clock latency of every re-allocation is recorded for the legacy
//! engine (per-call path enumeration, allocating interval folds), the
//! fast engine (path cache, scratch buffers, pruned parallel candidate
//! evaluation) and the delta engine (cross-arrival reuse: undisturbed
//! flows are translated instead of re-searched), on fat-trees k=8, 16
//! and 24. All runs replay the same stream and must produce
//! bit-identical schedules — the binary asserts this before reporting.
//!
//! Emits `BENCH_admission.json` with p50/p95 admission latency,
//! sustainable arrivals/sec and the fast- and delta-vs-legacy speedups
//! (normalized: no machine-local paths or timestamps), plus a
//! `results/METRICS_admission.json` latency-histogram registry.
//!
//! Usage: `bench_admission [--arrivals N] [--window W] [--flows F]
//!         [--lambda PER_SEC] [--max-paths P] [--seed S] [--out PATH]
//!         [--metrics-out PATH] [--ks K,K,...]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::Instant;
use taps_bench::Args;
use taps_core::{AllocMode, DeltaCache, FlowDemand, ShardedAllocator, SlotAllocator};
use taps_topology::build::{fat_tree, GBPS};
use taps_topology::Topology;

/// Which allocation entry point a replay exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// `AllocMode::Legacy` full pass per arrival.
    Legacy,
    /// `AllocMode::Fast` full pass per arrival.
    Fast,
    /// `allocate_batch_delta` with a persistent cross-arrival cache.
    Delta,
}

/// Latency distribution of one (topology, mode) run plus a schedule
/// fingerprint used to check fast/legacy agreement.
struct RunStats {
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    arrivals_per_sec: f64,
    fingerprint: Vec<(u64, bool)>,
    latencies_us: Vec<f64>,
    /// Delta-engine reuse statistics (`RunMode::Delta` only).
    delta_stats: Option<taps_core::DeltaStats>,
}

/// FNV-1a fold of one word into a running schedule fingerprint.
fn fnv_word(h: &mut u64, w: u64) {
    for b in w.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Config {
    arrivals: usize,
    window: usize,
    flows_per_task: usize,
    lambda: f64,
    max_paths: usize,
    parallel_threshold: usize,
    seed: u64,
}

/// One Poisson replay. The arrival stream is derived from `cfg.seed`
/// only, so legacy, fast and delta runs see identical demands.
fn replay(topo: &Topology, mode: RunMode, cfg: &Config) -> RunStats {
    const WARMUP: usize = 4;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut alloc = SlotAllocator::new(topo, 1e-4, cfg.max_paths);
    alloc.engine_mut().set_mode(match mode {
        RunMode::Legacy => AllocMode::Legacy,
        RunMode::Fast | RunMode::Delta => AllocMode::Fast,
    });
    alloc
        .engine_mut()
        .set_parallel_threshold(cfg.parallel_threshold);
    if !matches!(mode, RunMode::Legacy) {
        // Bring-up: install the path tables before traffic arrives, as
        // an SDN controller would. The legacy baseline stays naive (the
        // paper re-enumerates on every arrival), and warm vs cold cache
        // changes no allocation result — only where the enumeration
        // cost is paid.
        alloc.warm_paths();
    }
    // Persistent cross-arrival cache; alive for the whole replay so every
    // arrival after the first can translate undisturbed flows.
    let mut cache = DeltaCache::new();
    let hosts = topo.num_hosts();
    let mut active: VecDeque<Vec<FlowDemand>> = VecDeque::new();
    let mut flat: Vec<FlowDemand> = Vec::new();
    let mut now = 0.0f64;
    let mut next_id = 0usize;
    let mut latencies_us = Vec::with_capacity(cfg.arrivals);
    let mut fingerprint = Vec::new();
    for arrival in 0..WARMUP + cfg.arrivals {
        // Exponential inter-arrival time — a Poisson process of rate λ.
        now += -(1.0 - rng.gen::<f64>()).ln() / cfg.lambda;
        let task: Vec<FlowDemand> = (0..cfg.flows_per_task)
            .map(|_| {
                let src = rng.gen_range(0..hosts);
                let mut dst = rng.gen_range(0..hosts);
                if dst == src {
                    dst = (dst + 1) % hosts;
                }
                let id = next_id;
                next_id += 1;
                FlowDemand {
                    id,
                    src,
                    dst,
                    remaining: rng.gen_range(50_000..500_000) as f64,
                    deadline: now + rng.gen_range(0.02..0.10),
                }
            })
            .collect();
        active.push_back(task);
        if active.len() > cfg.window {
            active.pop_front();
        }
        flat.clear();
        flat.extend(active.iter().flatten().cloned());
        let start_slot = alloc.slot_at(now);
        let t0 = Instant::now();
        let allocs = match mode {
            RunMode::Delta => alloc.allocate_batch_delta(&flat, start_slot, &mut cache),
            RunMode::Legacy | RunMode::Fast => {
                alloc.reset();
                alloc.allocate_batch(&flat, start_slot)
            }
        }
        .expect("generated host pairs are connected");
        let dt = t0.elapsed();
        if arrival >= WARMUP {
            latencies_us.push(dt.as_secs_f64() * 1e6);
        }
        fingerprint.extend(allocs.iter().map(|a| (a.completion_slot, a.on_time)));
        std::hint::black_box(allocs);
    }
    latencies_us.sort_by(f64::total_cmp);
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    RunStats {
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        mean_us,
        arrivals_per_sec: 1e6 / mean_us,
        fingerprint,
        latencies_us,
        delta_stats: (mode == RunMode::Delta).then(|| cache.stats()),
    }
}

/// Result of the paper-scale sharded replay: per-burst latency stats
/// for three admission strategies over the identical arrival stream.
struct ShardedRun {
    /// Per-task sequential admission of the burst (one delta pass per
    /// arriving task, the canonical Alg. 1 loop) — total per burst.
    sequential_mean_us: f64,
    /// Whole burst in one monolithic delta pass.
    batched_mean_us: f64,
    /// Whole burst in one sharded pass (per-pod shard controllers).
    sharded_mean_us: f64,
    sharded_p50_us: f64,
    /// Burst admission speedup: sequential / batched.
    speedup_batched_vs_sequential: f64,
    /// End-to-end speedup of the sharded batched pass over per-task
    /// sequential admission — the before/after of this regime.
    speedup_sharded_vs_sequential: f64,
    /// Sharded vs monolithic batched pass. On a single-core machine the
    /// shards run inline, so this hovers near 1.0 by construction.
    speedup_sharded_vs_batched: f64,
    /// Flow allocations committed per second of sharded wall-clock:
    /// every pass re-admits the entire in-flight window (TAPS
    /// re-allocates all live flows on each arrival batch), so the rate
    /// is `window flows / pass latency`, averaged over rounds.
    admissions_per_sec: f64,
    /// In-flight window size (flows) once the sliding window is full.
    window_flows: usize,
    rounds: usize,
    /// FNV-1a over every measured round's sharded schedule (flow ids,
    /// path links, slices, completion slots, verdicts). A pure function
    /// of the seeded workload — two runs of the same configuration must
    /// produce the same value on any machine and any core count, which
    /// is exactly what the bench-smoke shard-determinism gate checks.
    schedule_fingerprint: u64,
}

/// Paper-scale regime (fat-tree k=32, 8 192 hosts): pod-local Poisson
/// bursts admitted batch-at-a-time, sharded per pod. Three strategies
/// replay the identical stream — per-task sequential admission (the
/// canonical Alg. 1 loop: one re-allocation per arriving task), one
/// monolithic batched delta pass per burst, and one sharded pass per
/// burst — and the final schedules are asserted bit-identical before
/// any number is reported. The legacy engine is deliberately absent
/// here — a full per-arrival path enumeration over 8 192 hosts is
/// exactly the bottleneck the k≤24 rows above already quantify.
fn replay_sharded(topo: &Topology, cfg: &ShardedConfig) -> ShardedRun {
    const WARMUP: usize = 2;
    let per_pod = topo.num_hosts() / cfg.pods;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sharded = ShardedAllocator::new(topo, 1e-4, cfg.max_paths);
    // Pod-scoped warm-up all around: every allocator pre-enumerates
    // exactly the intra-pod ToR pairs the pod-local workload can touch,
    // so no strategy pays enumeration inside the timed region and the
    // comparison is cache-fair. (An all-pairs warm at k=32 would
    // enumerate 512×511 ToR pairs and dominate the run for nothing —
    // cross-pod pairs never occur here.)
    sharded.warm(topo);
    let pods = taps_topology::pods::PodMap::new(topo);
    let mut unsharded = SlotAllocator::new(topo, 1e-4, cfg.max_paths);
    let mut cache = DeltaCache::new();
    let mut seq_alloc = SlotAllocator::new(topo, 1e-4, cfg.max_paths);
    let mut seq_cache = DeltaCache::new();
    for p in 0..pods.num_pods() {
        let p = u32::try_from(p).expect("pod count fits u32");
        unsharded.engine_mut().warm_paths_pod(topo, &pods, p);
        seq_alloc.engine_mut().warm_paths_pod(topo, &pods, p);
    }
    let mut active: VecDeque<Vec<FlowDemand>> = VecDeque::new();
    let mut flat: Vec<FlowDemand> = Vec::new();
    let mut next_id = 0usize;
    let mut start_slot = 0u64;
    let mut sequential_us = Vec::with_capacity(cfg.rounds);
    let mut batched_us = Vec::with_capacity(cfg.rounds);
    let mut sharded_us = Vec::with_capacity(cfg.rounds);
    let mut admissions_per_sec = Vec::with_capacity(cfg.rounds);
    let mut window_flows = 0usize;
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..WARMUP + cfg.rounds {
        // One Poisson burst: `batch` tasks of pod-local flows arriving
        // inside the same admission window.
        let burst: Vec<FlowDemand> = (0..cfg.batch * cfg.flows_per_task)
            .map(|_| {
                let pod = rng.gen_range(0..cfg.pods);
                let src = rng.gen_range(0..per_pod);
                let mut dst = rng.gen_range(0..per_pod);
                if dst == src {
                    dst = (dst + 1) % per_pod;
                }
                let id = next_id;
                next_id += 1;
                FlowDemand {
                    id,
                    src: pod * per_pod + src,
                    dst: pod * per_pod + dst,
                    remaining: rng.gen_range(50_000..500_000) as f64,
                    deadline: (start_slot + rng.gen_range(200u64..1_000)) as f64 * 1e-4,
                }
            })
            .collect();
        active.push_back(burst.clone());
        while active.len() > cfg.window_batches {
            active.pop_front();
        }
        // Sequential baseline: admit the burst one task at a time, each
        // arrival re-allocating incumbents + the prefix admitted so far
        // (the per-task Alg. 1 loop batching replaces).
        flat.clear();
        flat.extend(active.iter().take(active.len() - 1).flatten().cloned());
        let t0 = Instant::now();
        let mut seq_last = Vec::new();
        for task_flows in burst.chunks(cfg.flows_per_task) {
            flat.extend_from_slice(task_flows);
            seq_last = seq_alloc
                .allocate_batch_delta(&flat, start_slot, &mut seq_cache)
                // lint: panic-ok(bench harness: generated pod-local pairs are connected)
                .expect("pod-local pairs are connected");
        }
        let t_sequential = t0.elapsed();
        // `flat` now holds the full window; the batched passes see the
        // exact demand set the sequential loop ended on.
        let t1 = Instant::now();
        let want = unsharded
            .allocate_batch_delta(&flat, start_slot, &mut cache)
            // lint: panic-ok(bench harness: generated pod-local pairs are connected)
            .expect("pod-local pairs are connected");
        let t_batched = t1.elapsed();
        let t2 = Instant::now();
        let got = sharded
            .allocate_batch_sharded(topo, &flat, start_slot)
            // lint: panic-ok(bench harness: generated pod-local pairs are connected)
            .expect("pod-local pairs are connected");
        let t_sharded = t2.elapsed();
        // Bit-identity gates before any timing is trusted: batched ==
        // sequential's final pass (batching exactness) and sharded ==
        // batched (shard determinism).
        assert_eq!(
            want.len(),
            seq_last.len(),
            "round {round}: seq batch length"
        );
        assert_eq!(want.len(), got.len(), "round {round}: sharded batch length");
        for ((w, s), g) in want.iter().zip(&seq_last).zip(&got) {
            assert!(
                w.id == s.id && w.path == s.path && w.slices == s.slices && w.on_time == s.on_time,
                "round {round}: batched schedule diverged from sequential at flow {}",
                w.id
            );
            assert!(
                w.id == g.id && w.path == g.path && w.slices == g.slices && w.on_time == g.on_time,
                "round {round}: sharded schedule diverged at flow {}",
                w.id
            );
        }
        if round >= WARMUP {
            sequential_us.push(t_sequential.as_secs_f64() * 1e6);
            batched_us.push(t_batched.as_secs_f64() * 1e6);
            sharded_us.push(t_sharded.as_secs_f64() * 1e6);
            admissions_per_sec.push(flat.len() as f64 / t_sharded.as_secs_f64());
            window_flows = window_flows.max(flat.len());
            for a in &got {
                fnv_word(&mut fingerprint, a.id as u64); // lint: cast-ok(flow ids are small indices)
                for l in &a.path.links {
                    fnv_word(&mut fingerprint, u64::from(l.0));
                }
                for iv in a.slices.intervals() {
                    fnv_word(&mut fingerprint, iv.start);
                    fnv_word(&mut fingerprint, iv.end);
                }
                fnv_word(&mut fingerprint, a.completion_slot);
                fnv_word(&mut fingerprint, u64::from(a.on_time));
            }
        }
        std::hint::black_box((want, got, seq_last));
        start_slot += rng.gen_range(4u64..12);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sequential_mean_us = mean(&sequential_us);
    let batched_mean_us = mean(&batched_us);
    let sharded_mean_us = mean(&sharded_us);
    sharded_us.sort_by(f64::total_cmp);
    ShardedRun {
        sequential_mean_us,
        batched_mean_us,
        sharded_mean_us,
        sharded_p50_us: percentile(&sharded_us, 0.50),
        speedup_batched_vs_sequential: sequential_mean_us / batched_mean_us,
        speedup_sharded_vs_sequential: sequential_mean_us / sharded_mean_us,
        speedup_sharded_vs_batched: batched_mean_us / sharded_mean_us,
        admissions_per_sec: mean(&admissions_per_sec),
        window_flows,
        rounds: cfg.rounds,
        schedule_fingerprint: fingerprint,
    }
}

struct ShardedConfig {
    pods: usize,
    batch: usize,
    flows_per_task: usize,
    window_batches: usize,
    rounds: usize,
    max_paths: usize,
    seed: u64,
}

fn stats_value(s: &RunStats) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("p50_us".into(), serde_json::Value::Float(s.p50_us)),
        ("p95_us".into(), serde_json::Value::Float(s.p95_us)),
        ("mean_us".into(), serde_json::Value::Float(s.mean_us)),
        (
            "arrivals_per_sec".into(),
            serde_json::Value::Float(s.arrivals_per_sec),
        ),
    ])
}

fn main() {
    let args = Args::parse();
    let cfg = Config {
        arrivals: args.get_usize("arrivals", 40),
        window: args.get_usize("window", 12),
        flows_per_task: args.get_usize("flows", 6),
        lambda: args.get_f64("lambda", 200.0),
        max_paths: args.get_usize("max-paths", 64),
        parallel_threshold: args
            .get_usize("parallel-threshold", taps_core::DEFAULT_PARALLEL_THRESHOLD),
        seed: args.get_usize("seed", 1) as u64,
    };
    assert!(cfg.arrivals > 0, "--arrivals must be at least 1");
    let ks: Vec<usize> = args
        .get("ks")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--ks: comma-separated integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![8, 16, 24]);
    assert!(!ks.is_empty(), "--ks must name at least one fat-tree size");
    let out = args
        .get("out")
        .unwrap_or_else(|| "BENCH_admission.json".into());
    let metrics_out = args
        .get("metrics-out")
        .unwrap_or_else(|| "results/METRICS_admission.json".into());
    let mut metrics = taps_obs::Metrics::new();
    let mut results = Vec::new();
    println!(
        "admission latency: {} Poisson arrivals (λ={}/s), window {} tasks × {} flows, \
         {} candidate paths",
        cfg.arrivals, cfg.lambda, cfg.window, cfg.flows_per_task, cfg.max_paths
    );
    for &k in &ks {
        let topo = fat_tree(k, GBPS);
        let legacy = replay(&topo, RunMode::Legacy, &cfg);
        let fast = replay(&topo, RunMode::Fast, &cfg);
        let delta = replay(&topo, RunMode::Delta, &cfg);
        assert_eq!(
            legacy.fingerprint, fast.fingerprint,
            "fat_tree({k}): fast engine diverged from the legacy schedule"
        );
        assert_eq!(
            legacy.fingerprint, delta.fingerprint,
            "fat_tree({k}): delta engine diverged from the legacy schedule"
        );
        let speedup_p50 = legacy.p50_us / fast.p50_us;
        let speedup_mean = legacy.mean_us / fast.mean_us;
        let speedup_p50_delta = legacy.p50_us / delta.p50_us;
        let speedup_mean_delta = legacy.mean_us / delta.mean_us;
        for (mode, stats) in [("legacy", &legacy), ("fast", &fast), ("delta", &delta)] {
            let key = format!("admission_latency_us/fat{k}/{mode}");
            metrics.add(
                &format!("arrivals/fat{k}/{mode}"),
                stats.latencies_us.len() as u64,
            );
            for us in &stats.latencies_us {
                metrics.observe(&key, &taps_obs::LATENCY_US_BOUNDS, us.round() as u64);
            }
        }
        println!(
            "  fat_tree({k:>2}): legacy p50 {:>9.1}us | fast p50 {:>8.1}us ({:>5.1}x) | \
             delta p50 {:>7.1}us ({:>5.1}x), {:.0} arrivals/s",
            legacy.p50_us,
            fast.p50_us,
            speedup_p50,
            delta.p50_us,
            speedup_p50_delta,
            delta.arrivals_per_sec
        );
        // lint: panic-ok(bench harness: RunMode::Delta always records stats)
        let ds = delta.delta_stats.expect("delta replay records stats");
        results.push(serde_json::Value::Object(vec![
            ("k".into(), serde_json::Value::UInt(k as u64)),
            (
                "hosts".into(),
                serde_json::Value::UInt(topo.num_hosts() as u64),
            ),
            ("before_legacy".into(), stats_value(&legacy)),
            ("after_fast".into(), stats_value(&fast)),
            ("after_delta".into(), stats_value(&delta)),
            ("speedup_p50".into(), serde_json::Value::Float(speedup_p50)),
            (
                "speedup_mean".into(),
                serde_json::Value::Float(speedup_mean),
            ),
            (
                "speedup_p50_delta".into(),
                serde_json::Value::Float(speedup_p50_delta),
            ),
            (
                "speedup_mean_delta".into(),
                serde_json::Value::Float(speedup_mean_delta),
            ),
            (
                "delta_stats".into(),
                serde_json::Value::Object(vec![
                    (
                        "delta_batches".into(),
                        serde_json::Value::UInt(ds.delta_batches),
                    ),
                    (
                        "full_fallbacks".into(),
                        serde_json::Value::UInt(ds.full_fallbacks),
                    ),
                    (
                        "reused_flows".into(),
                        serde_json::Value::UInt(ds.reused_flows),
                    ),
                    (
                        "moved_flows".into(),
                        serde_json::Value::UInt(ds.moved_flows),
                    ),
                    (
                        "retimed_flows".into(),
                        serde_json::Value::UInt(ds.retimed_flows),
                    ),
                    (
                        "searched_flows".into(),
                        serde_json::Value::UInt(ds.searched_flows),
                    ),
                    (
                        "probed_candidates".into(),
                        serde_json::Value::UInt(ds.probed_candidates),
                    ),
                    (
                        "threshold_degrades".into(),
                        serde_json::Value::UInt(ds.threshold_degrades),
                    ),
                ]),
            ),
            ("schedules_identical".into(), serde_json::Value::Bool(true)),
        ]));
    }
    // Paper-scale sharded regime: fat-tree k=32 (8 192 hosts) with
    // pod-local Poisson bursts admitted batch-at-a-time. `--sharded-k 0`
    // disables the section (it builds a 9 472-node topology).
    let sharded_k = args.get_usize("sharded-k", 32);
    let sharded_row = if sharded_k > 0 {
        let scfg = ShardedConfig {
            pods: sharded_k,
            batch: args.get_usize("sharded-batch", 64),
            flows_per_task: cfg.flows_per_task,
            window_batches: args.get_usize("sharded-window", 4),
            rounds: args.get_usize("sharded-rounds", 10),
            max_paths: cfg.max_paths,
            seed: cfg.seed,
        };
        let topo = fat_tree(sharded_k, GBPS);
        let run = replay_sharded(&topo, &scfg);
        println!(
            "  fat_tree({sharded_k:>2}) sharded: sequential {:>9.1}us | batched {:>8.1}us \
             ({:>4.1}x) | sharded {:>8.1}us ({:>4.1}x vs seq) | {:.0} admissions/s over {} rounds",
            run.sequential_mean_us,
            run.batched_mean_us,
            run.speedup_batched_vs_sequential,
            run.sharded_mean_us,
            run.speedup_sharded_vs_sequential,
            run.admissions_per_sec,
            run.rounds
        );
        Some(serde_json::Value::Object(vec![
            ("k".into(), serde_json::Value::UInt(sharded_k as u64)),
            (
                "hosts".into(),
                serde_json::Value::UInt(topo.num_hosts() as u64),
            ),
            (
                "batch_tasks".into(),
                serde_json::Value::UInt(scfg.batch as u64),
            ),
            (
                "window_batches".into(),
                serde_json::Value::UInt(scfg.window_batches as u64),
            ),
            (
                "window_flows".into(),
                serde_json::Value::UInt(run.window_flows as u64),
            ),
            ("rounds".into(), serde_json::Value::UInt(scfg.rounds as u64)),
            (
                "sequential_mean_us".into(),
                serde_json::Value::Float(run.sequential_mean_us),
            ),
            (
                "batched_mean_us".into(),
                serde_json::Value::Float(run.batched_mean_us),
            ),
            (
                "sharded_mean_us".into(),
                serde_json::Value::Float(run.sharded_mean_us),
            ),
            (
                "sharded_p50_us".into(),
                serde_json::Value::Float(run.sharded_p50_us),
            ),
            (
                "speedup_batched_vs_sequential".into(),
                serde_json::Value::Float(run.speedup_batched_vs_sequential),
            ),
            (
                "speedup_sharded_vs_sequential".into(),
                serde_json::Value::Float(run.speedup_sharded_vs_sequential),
            ),
            (
                "speedup_sharded_vs_batched".into(),
                serde_json::Value::Float(run.speedup_sharded_vs_batched),
            ),
            (
                "admissions_per_sec_batched".into(),
                serde_json::Value::Float(run.admissions_per_sec),
            ),
            (
                "schedule_fingerprint".into(),
                serde_json::Value::UInt(run.schedule_fingerprint),
            ),
            ("schedules_identical".into(), serde_json::Value::Bool(true)),
        ]))
    } else {
        None
    };
    let mut doc = serde_json::Value::Object(vec![
        ("bench".into(), serde_json::Value::Str("admission".into())),
        (
            "config".into(),
            serde_json::Value::Object(vec![
                (
                    "arrivals".into(),
                    serde_json::Value::UInt(cfg.arrivals as u64),
                ),
                (
                    "window_tasks".into(),
                    serde_json::Value::UInt(cfg.window as u64),
                ),
                (
                    "flows_per_task".into(),
                    serde_json::Value::UInt(cfg.flows_per_task as u64),
                ),
                (
                    "lambda_per_sec".into(),
                    serde_json::Value::Float(cfg.lambda),
                ),
                ("slot_seconds".into(), serde_json::Value::Float(1e-4)),
                (
                    "max_paths".into(),
                    serde_json::Value::UInt(cfg.max_paths as u64),
                ),
                ("seed".into(), serde_json::Value::UInt(cfg.seed)),
                (
                    "ks".into(),
                    serde_json::Value::Array(
                        ks.iter()
                            .map(|&k| serde_json::Value::UInt(k as u64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("results".into(), serde_json::Value::Array(results)),
    ]);
    if let (serde_json::Value::Object(members), Some(row)) = (&mut doc, sharded_row) {
        members.push(("sharded".into(), row));
    }
    // Route the report through the normalizing writer shared with the
    // trace exporter: machine-local keys (timestamps, hostnames) are
    // stripped and cwd-prefixed paths relativized, so two runs of the
    // same binary on different machines emit identical artifacts.
    taps_obs::json::write_report(std::path::Path::new(&out), &mut doc)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
    metrics
        .write(std::path::Path::new(&metrics_out))
        .unwrap_or_else(|e| panic!("writing {metrics_out}: {e}"));
    eprintln!("wrote {metrics_out}");
}
