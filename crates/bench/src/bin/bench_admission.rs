//! Admission-latency benchmark for the fast + delta re-allocation
//! engines.
//!
//! Replays a Poisson stream of task arrivals against a persistent
//! allocator: each arrival adds a task's flows to the active set and
//! triggers the full re-allocation TAPS performs per arrival (Alg. 1).
//! Wall-clock latency of every re-allocation is recorded for the legacy
//! engine (per-call path enumeration, allocating interval folds), the
//! fast engine (path cache, scratch buffers, pruned parallel candidate
//! evaluation) and the delta engine (cross-arrival reuse: undisturbed
//! flows are translated instead of re-searched), on fat-trees k=8, 16
//! and 24. All runs replay the same stream and must produce
//! bit-identical schedules — the binary asserts this before reporting.
//!
//! Emits `BENCH_admission.json` with p50/p95 admission latency,
//! sustainable arrivals/sec and the fast- and delta-vs-legacy speedups
//! (normalized: no machine-local paths or timestamps), plus a
//! `results/METRICS_admission.json` latency-histogram registry.
//!
//! Usage: `bench_admission [--arrivals N] [--window W] [--flows F]
//!         [--lambda PER_SEC] [--max-paths P] [--seed S] [--out PATH]
//!         [--metrics-out PATH] [--ks K,K,...]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::Instant;
use taps_bench::Args;
use taps_core::{AllocMode, DeltaCache, FlowDemand, SlotAllocator};
use taps_topology::build::{fat_tree, GBPS};
use taps_topology::Topology;

/// Which allocation entry point a replay exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// `AllocMode::Legacy` full pass per arrival.
    Legacy,
    /// `AllocMode::Fast` full pass per arrival.
    Fast,
    /// `allocate_batch_delta` with a persistent cross-arrival cache.
    Delta,
}

/// Latency distribution of one (topology, mode) run plus a schedule
/// fingerprint used to check fast/legacy agreement.
struct RunStats {
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    arrivals_per_sec: f64,
    fingerprint: Vec<(u64, bool)>,
    latencies_us: Vec<f64>,
    /// Delta-engine reuse statistics (`RunMode::Delta` only).
    delta_stats: Option<taps_core::DeltaStats>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Config {
    arrivals: usize,
    window: usize,
    flows_per_task: usize,
    lambda: f64,
    max_paths: usize,
    parallel_threshold: usize,
    seed: u64,
}

/// One Poisson replay. The arrival stream is derived from `cfg.seed`
/// only, so legacy, fast and delta runs see identical demands.
fn replay(topo: &Topology, mode: RunMode, cfg: &Config) -> RunStats {
    const WARMUP: usize = 4;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut alloc = SlotAllocator::new(topo, 1e-4, cfg.max_paths);
    alloc.engine_mut().set_mode(match mode {
        RunMode::Legacy => AllocMode::Legacy,
        RunMode::Fast | RunMode::Delta => AllocMode::Fast,
    });
    alloc
        .engine_mut()
        .set_parallel_threshold(cfg.parallel_threshold);
    if !matches!(mode, RunMode::Legacy) {
        // Bring-up: install the path tables before traffic arrives, as
        // an SDN controller would. The legacy baseline stays naive (the
        // paper re-enumerates on every arrival), and warm vs cold cache
        // changes no allocation result — only where the enumeration
        // cost is paid.
        alloc.warm_paths();
    }
    // Persistent cross-arrival cache; alive for the whole replay so every
    // arrival after the first can translate undisturbed flows.
    let mut cache = DeltaCache::new();
    let hosts = topo.num_hosts();
    let mut active: VecDeque<Vec<FlowDemand>> = VecDeque::new();
    let mut flat: Vec<FlowDemand> = Vec::new();
    let mut now = 0.0f64;
    let mut next_id = 0usize;
    let mut latencies_us = Vec::with_capacity(cfg.arrivals);
    let mut fingerprint = Vec::new();
    for arrival in 0..WARMUP + cfg.arrivals {
        // Exponential inter-arrival time — a Poisson process of rate λ.
        now += -(1.0 - rng.gen::<f64>()).ln() / cfg.lambda;
        let task: Vec<FlowDemand> = (0..cfg.flows_per_task)
            .map(|_| {
                let src = rng.gen_range(0..hosts);
                let mut dst = rng.gen_range(0..hosts);
                if dst == src {
                    dst = (dst + 1) % hosts;
                }
                let id = next_id;
                next_id += 1;
                FlowDemand {
                    id,
                    src,
                    dst,
                    remaining: rng.gen_range(50_000..500_000) as f64,
                    deadline: now + rng.gen_range(0.02..0.10),
                }
            })
            .collect();
        active.push_back(task);
        if active.len() > cfg.window {
            active.pop_front();
        }
        flat.clear();
        flat.extend(active.iter().flatten().cloned());
        let start_slot = alloc.slot_at(now);
        let t0 = Instant::now();
        let allocs = match mode {
            RunMode::Delta => alloc.allocate_batch_delta(&flat, start_slot, &mut cache),
            RunMode::Legacy | RunMode::Fast => {
                alloc.reset();
                alloc.allocate_batch(&flat, start_slot)
            }
        }
        .expect("generated host pairs are connected");
        let dt = t0.elapsed();
        if arrival >= WARMUP {
            latencies_us.push(dt.as_secs_f64() * 1e6);
        }
        fingerprint.extend(allocs.iter().map(|a| (a.completion_slot, a.on_time)));
        std::hint::black_box(allocs);
    }
    latencies_us.sort_by(f64::total_cmp);
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    RunStats {
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        mean_us,
        arrivals_per_sec: 1e6 / mean_us,
        fingerprint,
        latencies_us,
        delta_stats: (mode == RunMode::Delta).then(|| cache.stats()),
    }
}

fn stats_value(s: &RunStats) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("p50_us".into(), serde_json::Value::Float(s.p50_us)),
        ("p95_us".into(), serde_json::Value::Float(s.p95_us)),
        ("mean_us".into(), serde_json::Value::Float(s.mean_us)),
        (
            "arrivals_per_sec".into(),
            serde_json::Value::Float(s.arrivals_per_sec),
        ),
    ])
}

fn main() {
    let args = Args::parse();
    let cfg = Config {
        arrivals: args.get_usize("arrivals", 40),
        window: args.get_usize("window", 12),
        flows_per_task: args.get_usize("flows", 6),
        lambda: args.get_f64("lambda", 200.0),
        max_paths: args.get_usize("max-paths", 64),
        parallel_threshold: args
            .get_usize("parallel-threshold", taps_core::DEFAULT_PARALLEL_THRESHOLD),
        seed: args.get_usize("seed", 1) as u64,
    };
    assert!(cfg.arrivals > 0, "--arrivals must be at least 1");
    let ks: Vec<usize> = args
        .get("ks")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--ks: comma-separated integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![8, 16, 24]);
    assert!(!ks.is_empty(), "--ks must name at least one fat-tree size");
    let out = args
        .get("out")
        .unwrap_or_else(|| "BENCH_admission.json".into());
    let metrics_out = args
        .get("metrics-out")
        .unwrap_or_else(|| "results/METRICS_admission.json".into());
    let mut metrics = taps_obs::Metrics::new();
    let mut results = Vec::new();
    println!(
        "admission latency: {} Poisson arrivals (λ={}/s), window {} tasks × {} flows, \
         {} candidate paths",
        cfg.arrivals, cfg.lambda, cfg.window, cfg.flows_per_task, cfg.max_paths
    );
    for &k in &ks {
        let topo = fat_tree(k, GBPS);
        let legacy = replay(&topo, RunMode::Legacy, &cfg);
        let fast = replay(&topo, RunMode::Fast, &cfg);
        let delta = replay(&topo, RunMode::Delta, &cfg);
        assert_eq!(
            legacy.fingerprint, fast.fingerprint,
            "fat_tree({k}): fast engine diverged from the legacy schedule"
        );
        assert_eq!(
            legacy.fingerprint, delta.fingerprint,
            "fat_tree({k}): delta engine diverged from the legacy schedule"
        );
        let speedup_p50 = legacy.p50_us / fast.p50_us;
        let speedup_mean = legacy.mean_us / fast.mean_us;
        let speedup_p50_delta = legacy.p50_us / delta.p50_us;
        let speedup_mean_delta = legacy.mean_us / delta.mean_us;
        for (mode, stats) in [("legacy", &legacy), ("fast", &fast), ("delta", &delta)] {
            let key = format!("admission_latency_us/fat{k}/{mode}");
            metrics.add(
                &format!("arrivals/fat{k}/{mode}"),
                stats.latencies_us.len() as u64,
            );
            for us in &stats.latencies_us {
                metrics.observe(&key, &taps_obs::LATENCY_US_BOUNDS, us.round() as u64);
            }
        }
        println!(
            "  fat_tree({k:>2}): legacy p50 {:>9.1}us | fast p50 {:>8.1}us ({:>5.1}x) | \
             delta p50 {:>7.1}us ({:>5.1}x), {:.0} arrivals/s",
            legacy.p50_us,
            fast.p50_us,
            speedup_p50,
            delta.p50_us,
            speedup_p50_delta,
            delta.arrivals_per_sec
        );
        // lint: panic-ok(bench harness: RunMode::Delta always records stats)
        let ds = delta.delta_stats.expect("delta replay records stats");
        results.push(serde_json::Value::Object(vec![
            ("k".into(), serde_json::Value::UInt(k as u64)),
            (
                "hosts".into(),
                serde_json::Value::UInt(topo.num_hosts() as u64),
            ),
            ("before_legacy".into(), stats_value(&legacy)),
            ("after_fast".into(), stats_value(&fast)),
            ("after_delta".into(), stats_value(&delta)),
            ("speedup_p50".into(), serde_json::Value::Float(speedup_p50)),
            (
                "speedup_mean".into(),
                serde_json::Value::Float(speedup_mean),
            ),
            (
                "speedup_p50_delta".into(),
                serde_json::Value::Float(speedup_p50_delta),
            ),
            (
                "speedup_mean_delta".into(),
                serde_json::Value::Float(speedup_mean_delta),
            ),
            (
                "delta_stats".into(),
                serde_json::Value::Object(vec![
                    (
                        "delta_batches".into(),
                        serde_json::Value::UInt(ds.delta_batches),
                    ),
                    (
                        "full_fallbacks".into(),
                        serde_json::Value::UInt(ds.full_fallbacks),
                    ),
                    (
                        "reused_flows".into(),
                        serde_json::Value::UInt(ds.reused_flows),
                    ),
                    (
                        "moved_flows".into(),
                        serde_json::Value::UInt(ds.moved_flows),
                    ),
                    (
                        "retimed_flows".into(),
                        serde_json::Value::UInt(ds.retimed_flows),
                    ),
                    (
                        "searched_flows".into(),
                        serde_json::Value::UInt(ds.searched_flows),
                    ),
                    (
                        "probed_candidates".into(),
                        serde_json::Value::UInt(ds.probed_candidates),
                    ),
                    (
                        "threshold_degrades".into(),
                        serde_json::Value::UInt(ds.threshold_degrades),
                    ),
                ]),
            ),
            ("schedules_identical".into(), serde_json::Value::Bool(true)),
        ]));
    }
    let mut doc = serde_json::Value::Object(vec![
        ("bench".into(), serde_json::Value::Str("admission".into())),
        (
            "config".into(),
            serde_json::Value::Object(vec![
                (
                    "arrivals".into(),
                    serde_json::Value::UInt(cfg.arrivals as u64),
                ),
                (
                    "window_tasks".into(),
                    serde_json::Value::UInt(cfg.window as u64),
                ),
                (
                    "flows_per_task".into(),
                    serde_json::Value::UInt(cfg.flows_per_task as u64),
                ),
                (
                    "lambda_per_sec".into(),
                    serde_json::Value::Float(cfg.lambda),
                ),
                ("slot_seconds".into(), serde_json::Value::Float(1e-4)),
                (
                    "max_paths".into(),
                    serde_json::Value::UInt(cfg.max_paths as u64),
                ),
                ("seed".into(), serde_json::Value::UInt(cfg.seed)),
                (
                    "ks".into(),
                    serde_json::Value::Array(
                        ks.iter()
                            .map(|&k| serde_json::Value::UInt(k as u64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("results".into(), serde_json::Value::Array(results)),
    ]);
    // Route the report through the normalizing writer shared with the
    // trace exporter: machine-local keys (timestamps, hostnames) are
    // stripped and cwd-prefixed paths relativized, so two runs of the
    // same binary on different machines emit identical artifacts.
    taps_obs::json::write_report(std::path::Path::new(&out), &mut doc)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
    metrics
        .write(std::path::Path::new(&metrics_out))
        .unwrap_or_else(|e| panic!("writing {metrics_out}: {e}"));
    eprintln!("wrote {metrics_out}");
}
