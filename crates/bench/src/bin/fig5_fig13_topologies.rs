//! Figs. 5 & 13 — the evaluation topologies, reproduced as structure
//! tables (the paper shows diagrams; we print the exact node/link
//! inventory so the reproduction is checkable at a glance).

use taps_topology::build::{fat_tree, partial_fat_tree_testbed, single_rooted, GBPS};
use taps_topology::{NodeId, NodeKind, Topology};

fn describe(t: &Topology) {
    let count = |k: NodeKind| {
        (0..t.num_nodes())
            .filter(|i| t.node(NodeId(*i as u32)).kind == k)
            .count()
    };
    println!("{}", t.name);
    println!("  hosts:        {}", count(NodeKind::Host));
    println!("  ToR/edge:     {}", count(NodeKind::TorSwitch));
    println!("  aggregation:  {}", count(NodeKind::AggSwitch));
    println!("  core:         {}", count(NodeKind::CoreSwitch));
    println!(
        "  cables:       {} ({} directed links)",
        t.num_links() / 2,
        t.num_links()
    );
    println!(
        "  capacity:     {} Gbps uniform\n",
        t.uniform_capacity().unwrap() * 8.0 / 1e9
    );
}

fn main() {
    println!("Fig. 5 — the single-rooted tree (paper scale: 36,000 servers)\n");
    describe(&single_rooted(30, 30, 40, GBPS));

    println!("multi-rooted topology — 32-pod fat-tree (paper: 8192 servers)\n");
    describe(&fat_tree(32, GBPS));

    println!("Fig. 13 — the partial fat-tree testbed (8 endhosts)\n");
    describe(&partial_fat_tree_testbed(GBPS));
}
