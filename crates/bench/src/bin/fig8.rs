//! Fig. 8 — wasted bandwidth ratio vs mean deadline (single-rooted
//! tree): (a) all six schedulers, (b) without Fair Sharing (the paper
//! re-plots the rest at a finer scale; the numbers are the same, so this
//! binary prints one table covering both panels plus the task-level
//! variant).
//!
//! Usage: `fig8 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "fig8: {} ({} hosts), {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for deadline_ms in (20..=60).step_by(10) {
        let r = run_point(&topo, deadline_ms as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.mean_deadline = deadline_ms as f64 / 1000.0;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  deadline {deadline_ms} ms done");
        rows.extend(r);
    }
    print_table(
        "Fig. 8(a,b) — wasted bandwidth ratio vs mean deadline (ms)",
        "deadline/ms",
        &rows,
        |r| r.wasted_bandwidth,
    );
    print_table(
        "Fig. 8 (task-level waste variant) — bytes in failed tasks / total",
        "deadline/ms",
        &rows,
        |r| r.wasted_bandwidth_task,
    );
    maybe_write_json(&args, &rows);
}
