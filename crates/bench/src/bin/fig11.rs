//! Fig. 11 — impact of task diffusion: task completion ratio while the
//! mean number of flows per task sweeps 400–2000 (scaled by the preset's
//! ratio to the paper's 1200).
//!
//! Usage: `fig11 [--scale tiny|small|paper] [--seeds N] [--rate λ]
//! [--json out.json]`

use taps_bench::{maybe_write_json, print_table, run_point, workload_single_rooted, Args, Row};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    // The preset keeps the paper's per-core-link load; sweep relative to
    // its default flow count the way the paper sweeps 400..2000 vs 1200.
    let base = scale.single_rooted_flows_per_task();
    eprintln!(
        "fig11: {} ({} hosts), base flows/task {base}, {seeds} seed(s) per point",
        topo.name,
        topo.num_hosts()
    );

    let mut rows: Vec<Row> = Vec::new();
    for paper_flows in (400..=2000).step_by(200) {
        let flows = paper_flows as f64 / 1200.0 * base;
        let r = run_point(&topo, paper_flows as f64, seeds, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.mean_flows_per_task = flows;
            cfg.sd_flows_per_task = flows / 4.0;
            cfg.arrival_rate = args.get_f64("rate", cfg.arrival_rate);
            cfg.generate()
        });
        eprintln!("  {paper_flows} flows/task (scaled {flows:.0}) done");
        rows.extend(r);
    }
    print_table(
        "Fig. 11 — task completion ratio vs flows per task (paper x-axis)",
        "flows/task",
        &rows,
        |r| r.task_completion,
    );
    maybe_write_json(&args, &rows);
}
