//! Ablation — the reject rule (DESIGN.md §6): TAPS with the paper's
//! policy vs never-preempt vs always-admit, across the Fig. 6 deadline
//! sweep. Shows how much of TAPS's win comes from admission control and
//! how much from preemption.
//!
//! Usage: `ablation_reject [--scale tiny|small|paper] [--seeds N]`

use taps_bench::{run_jobs, workload_single_rooted, Args};
use taps_core::RejectPolicy;
use taps_flowsim::{SimConfig, Simulation};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let seeds = args.seeds();
    let topo = scale.single_rooted_topo();
    eprintln!(
        "ablation_reject: {} ({} hosts), {seeds} seed(s)",
        topo.name,
        topo.num_hosts()
    );

    let policies = [
        ("paper", RejectPolicy::Paper),
        ("never-preempt", RejectPolicy::NeverPreempt),
        ("always-admit", RejectPolicy::AlwaysAdmit),
    ];

    println!("TAPS reject-rule ablation — task completion ratio / wasted bandwidth ratio");
    print!("{:>12}", "deadline/ms");
    for (name, _) in &policies {
        print!("{name:>26}");
    }
    println!();

    for deadline_ms in (20..=60).step_by(10) {
        let workloads: Vec<_> = (0..seeds as u64)
            .map(|seed| {
                let mut cfg = workload_single_rooted(scale, &topo, seed);
                cfg.mean_deadline = deadline_ms as f64 / 1000.0;
                cfg.generate()
            })
            .collect();
        let jobs: Vec<(usize, usize)> = (0..policies.len())
            .flat_map(|p| (0..workloads.len()).map(move |w| (p, w)))
            .collect();
        let results = run_jobs(&jobs, |&(p, w)| {
            let mut taps = taps_bench::make_taps(policies[p].1, 16, 0.0001);
            let cfg = SimConfig {
                validate_capacity: false,
                ..SimConfig::default()
            };
            let rep = Simulation::new(&topo, &workloads[w], cfg).run(taps.as_mut());
            (p, rep.task_completion_ratio(), rep.wasted_bandwidth_ratio())
        });
        print!("{deadline_ms:>12}");
        for p in 0..policies.len() {
            let mine: Vec<_> = results.iter().filter(|(pi, _, _)| *pi == p).collect();
            let n = mine.len() as f64;
            let tcr: f64 = mine.iter().map(|(_, t, _)| t).sum::<f64>() / n;
            let wbr: f64 = mine.iter().map(|(_, _, w)| w).sum::<f64>() / n;
            print!("{:>17.4} / {:>6.4}", tcr, wbr);
        }
        println!();
    }
}
