//! Shared experiment harness for the figure-regeneration binaries and
//! the Criterion micro-benchmarks.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (§V–§VI); this library provides the pieces they share:
//! scheduler construction, the default scaled-down topology/workload
//! presets (see DESIGN.md for the scaling argument), a parallel sweep
//! runner, and plain-text/JSON output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use taps_baselines::{Baraat, D2tcp, FairSharing, Pdq, Varys, D3};
use taps_core::{RejectPolicy, Taps, TapsConfig};
use taps_flowsim::{Scheduler, SimConfig, SimReport, Simulation, Workload};
use taps_topology::build::{fat_tree, single_rooted, GBPS};
use taps_topology::Topology;
use taps_workload::WorkloadConfig;

/// The six schedulers of §V, in the paper's plotting order.
pub const SCHEDULER_NAMES: [&str; 6] = ["FairSharing", "D3", "PDQ", "Baraat", "Varys", "TAPS"];

/// Builds a fresh scheduler by name. Panics on unknown names.
pub fn make_scheduler(name: &str) -> Box<dyn Scheduler + Send> {
    match name {
        "FairSharing" => Box::new(FairSharing::new()),
        "D3" => Box::new(D3::new()),
        "PDQ" => Box::new(Pdq::new()),
        "Baraat" => Box::new(Baraat::new()),
        "Varys" => Box::new(Varys::new()),
        "TAPS" => Box::new(Taps::new()),
        "D2TCP" => Box::new(D2tcp::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Builds a TAPS instance with a specific reject policy (ablations).
pub fn make_taps(policy: RejectPolicy, max_paths: usize, slot: f64) -> Box<dyn Scheduler + Send> {
    Box::new(Taps::with_config(TapsConfig {
        slot,
        max_candidate_paths: max_paths,
        policy,
        ..TapsConfig::default()
    }))
}

/// Experiment scale: how large the topology (and proportionally the
/// per-task flow count) is relative to the paper's full setup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scale {
    /// CI-size: `single_rooted(3,3,4)` / `fat_tree(4)`; flows ÷ 100.
    Tiny,
    /// Default: `single_rooted(6,6,6)` / `fat_tree(8)`; flows scaled so
    /// the per-core-link load per task matches the paper (≈ 40 flows per
    /// pod uplink per task).
    Small,
    /// The paper's full scale: `single_rooted(30,30,40)` / `fat_tree(32)`.
    Paper,
}

impl Scale {
    /// Parses `tiny` / `small` / `paper`.
    pub fn parse(s: &str) -> Scale {
        match s {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "paper" => Scale::Paper,
            other => panic!("unknown scale {other} (tiny|small|paper)"),
        }
    }

    /// The single-rooted tree of Fig. 5 at this scale.
    pub fn single_rooted_topo(self) -> Topology {
        match self {
            Scale::Tiny => single_rooted(3, 3, 4, GBPS),
            Scale::Small => single_rooted(6, 6, 6, GBPS),
            Scale::Paper => single_rooted(30, 30, 40, GBPS),
        }
    }

    /// The multi-rooted fat-tree at this scale.
    pub fn fat_tree_topo(self) -> Topology {
        match self {
            Scale::Tiny => fat_tree(4, GBPS),
            Scale::Small => fat_tree(8, GBPS),
            Scale::Paper => fat_tree(32, GBPS),
        }
    }

    /// Mean flows per task preserving the paper's per-pod-uplink load
    /// (≈ 40 flows × pods for the single-rooted tree).
    pub fn single_rooted_flows_per_task(self) -> f64 {
        match self {
            Scale::Tiny => 12.0,
            Scale::Small => 240.0,
            Scale::Paper => 1200.0,
        }
    }

    /// Mean flows per task for the fat-tree runs (paper: 1024).
    pub fn fat_tree_flows_per_task(self) -> f64 {
        match self {
            Scale::Tiny => 16.0,
            Scale::Small => 128.0,
            Scale::Paper => 1024.0,
        }
    }
}

/// Workload preset mirroring §V-A at a given scale (single-rooted).
pub fn workload_single_rooted(scale: Scale, topo: &Topology, seed: u64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper_single_rooted(topo.num_hosts(), seed);
    let flows = scale.single_rooted_flows_per_task();
    cfg.sd_flows_per_task = flows / 4.0;
    cfg.mean_flows_per_task = flows;
    cfg
}

/// Workload preset mirroring §V-A at a given scale (fat-tree).
pub fn workload_fat_tree(scale: Scale, topo: &Topology, seed: u64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper_multi_rooted(topo.num_hosts(), seed);
    let flows = scale.fat_tree_flows_per_task();
    cfg.sd_flows_per_task = flows / 4.0;
    cfg.mean_flows_per_task = flows;
    cfg
}

/// One scheduler's metrics at one sweep point (serializable row).
#[derive(Clone, Debug)]
pub struct Row {
    /// Sweep x-value (e.g. mean deadline in ms).
    pub x: f64,
    /// Scheduler name.
    pub scheduler: String,
    /// Task completion ratio.
    pub task_completion: f64,
    /// Flow completion ratio.
    pub flow_completion: f64,
    /// Application throughput, flow granularity (bytes of on-time flows
    /// / total bytes).
    pub app_throughput: f64,
    /// Application throughput, task granularity (bytes of flows in fully
    /// completed tasks / total bytes) — the paper's Fig. 6(a)/9(a)
    /// "task size ratio".
    pub app_task_throughput: f64,
    /// Wasted bandwidth ratio (flow granularity, Fig. 8).
    pub wasted_bandwidth: f64,
    /// Wasted bandwidth ratio (task granularity).
    pub wasted_bandwidth_task: f64,
    /// Seeds averaged.
    pub seeds: usize,
}

impl serde_json::Serialize for Row {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("x".into(), self.x.to_value()),
            ("scheduler".into(), self.scheduler.to_value()),
            ("task_completion".into(), self.task_completion.to_value()),
            ("flow_completion".into(), self.flow_completion.to_value()),
            ("app_throughput".into(), self.app_throughput.to_value()),
            (
                "app_task_throughput".into(),
                self.app_task_throughput.to_value(),
            ),
            ("wasted_bandwidth".into(), self.wasted_bandwidth.to_value()),
            (
                "wasted_bandwidth_task".into(),
                self.wasted_bandwidth_task.to_value(),
            ),
            ("seeds".into(), self.seeds.to_value()),
        ])
    }
}

/// Runs one `(topology, workload)` point under one scheduler.
pub fn run_one(topo: &Topology, wl: &Workload, name: &str) -> SimReport {
    let mut sched = make_scheduler(name);
    let cfg = SimConfig {
        validate_capacity: false, // sweeps are hot paths; invariants are covered by tests
        ..SimConfig::default()
    };
    Simulation::new(topo, wl, cfg).run(sched.as_mut())
}

/// Runs all six schedulers at one point, each over `seeds` workloads
/// produced by `gen(seed)`, and returns the seed-averaged rows.
/// Scheduler×seed combinations run in parallel (crossbeam scoped
/// threads).
pub fn run_point<F>(topo: &Topology, x: f64, seeds: usize, gen: F) -> Vec<Row>
where
    F: Fn(u64) -> Workload + Sync,
{
    let workloads: Vec<Workload> = (0..seeds as u64).map(&gen).collect();
    let mut jobs: Vec<(usize, usize)> = Vec::new(); // (scheduler idx, seed idx)
    for s in 0..SCHEDULER_NAMES.len() {
        for w in 0..workloads.len() {
            jobs.push((s, w));
        }
    }
    let results: Vec<(usize, SimReport)> = run_jobs(&jobs, |(s, w)| {
        (*s, run_one(topo, &workloads[*w], SCHEDULER_NAMES[*s]))
    });

    SCHEDULER_NAMES
        .iter()
        .enumerate()
        .map(|(s, name)| {
            let mine: Vec<&SimReport> = results
                .iter()
                .filter(|(si, _)| *si == s)
                .map(|(_, r)| r)
                .collect();
            let n = mine.len() as f64;
            let avg = |f: &dyn Fn(&SimReport) -> f64| mine.iter().map(|r| f(r)).sum::<f64>() / n;
            Row {
                x,
                scheduler: name.to_string(),
                task_completion: avg(&|r| r.task_completion_ratio()),
                flow_completion: avg(&|r| r.flow_completion_ratio()),
                app_throughput: avg(&|r| r.app_throughput()),
                app_task_throughput: avg(&|r| r.app_task_throughput()),
                wasted_bandwidth: avg(&|r| r.wasted_bandwidth_ratio()),
                wasted_bandwidth_task: avg(&|r| r.wasted_bandwidth_task_ratio()),
                seeds,
            }
        })
        .collect()
}

/// Runs `jobs` across `min(jobs, cores)` scoped threads, preserving
/// nothing about order (results carry their own keys).
pub fn run_jobs<J, R, F>(jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = f(&jobs[i]);
                results.lock().expect("worker thread panicked").push(r);
            });
        }
    });
    results.into_inner().expect("worker thread panicked")
}

/// Prints a figure-style table: one row per x-value, one column per
/// scheduler, cells from `metric`.
pub fn print_table(title: &str, x_label: &str, rows: &[Row], metric: fn(&Row) -> f64) {
    println!("\n## {title}");
    print!("{x_label:>12}");
    for name in SCHEDULER_NAMES {
        print!("{name:>13}");
    }
    println!();
    let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    for x in xs {
        print!("{x:>12.3}");
        for name in SCHEDULER_NAMES {
            let cell = rows
                .iter()
                .find(|r| r.x == x && r.scheduler == name)
                .map(metric)
                .unwrap_or(f64::NAN);
            print!("{cell:>13.4}");
        }
        println!();
    }
}

/// Renders a figure-style ASCII chart: one braille-free lane per
/// scheduler, `y` scaled to `[0, 1]`, one column per x-value. Used by
/// the figure binaries under `--chart` so the regenerated "figures"
/// actually look like figures in a terminal.
pub fn print_chart(title: &str, rows: &[Row], metric: fn(&Row) -> f64) {
    const HEIGHT: usize = 12;
    const GLYPHS: [char; 6] = ['F', 'D', 'P', 'B', 'V', 'T']; // Fair D3 PDQ Baraat Varys TAPS
    let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    if xs.is_empty() {
        return;
    }
    let mut grid = vec![vec![' '; xs.len() * 3 + 1]; HEIGHT + 1];
    for (si, name) in SCHEDULER_NAMES.iter().enumerate() {
        for (xi, x) in xs.iter().enumerate() {
            let Some(v) = rows
                .iter()
                .find(|r| r.x == *x && r.scheduler == *name)
                .map(metric)
            else {
                continue;
            };
            let y = (v.clamp(0.0, 1.0) * HEIGHT as f64).round() as usize;
            let row = HEIGHT - y;
            let col = xi * 3 + 1;
            // Later schedulers overwrite on collision; TAPS (last) wins,
            // which keeps the headline curve visible.
            grid[row][col + si % 2] = GLYPHS[si];
        }
    }
    println!(
        "
## {title} (chart; 1.0 at top, lanes: F=Fair D=D3 P=PDQ B=Baraat V=Varys T=TAPS)"
    );
    for (i, line) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0 |".to_string()
        } else if i == HEIGHT {
            "0.0 |".to_string()
        } else {
            "    |".to_string()
        };
        println!("{label}{}", line.iter().collect::<String>());
    }
    print!("     ");
    for x in &xs {
        print!("{x:>3.0}");
    }
    println!();
}

/// Writes rows as JSON to the path given by `--json <path>` (no-op when
/// absent).
pub fn maybe_write_json(args: &Args, rows: &[Row]) {
    if let Some(path) = args.get("json") {
        let body = serde_json::to_string_pretty(rows).expect("rows serialize");
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Minimal `--key value` / `--key=value` / `--flag` argument parser (the
/// workspace avoids a CLI dependency).
#[derive(Clone, Debug, Default)]
pub struct Args {
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                panic!("unexpected positional argument {a}");
            };
            if let Some((k, v)) = key.split_once('=') {
                args.kv.push((k.to_string(), v.to_string()));
            } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                args.kv.push((key.to_string(), it.next().unwrap()));
            } else {
                args.flags.push(key.to_string());
            }
        }
        args
    }

    /// String value of `--key`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.kv
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// `f64` value of `--key`, or `default`.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} wants a number"))
            })
            .unwrap_or(default)
    }

    /// `usize` value of `--key`, or `default`.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} wants an integer"))
            })
            .unwrap_or(default)
    }

    /// Whether bare `--flag` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The scale preset (`--scale tiny|small|paper`, default small).
    pub fn scale(&self) -> Scale {
        Scale::parse(&self.get("scale").unwrap_or_else(|| "small".into()))
    }

    /// Seeds per point (`--seeds N`, default 3).
    pub fn seeds(&self) -> usize {
        self.get_usize("seeds", 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_forms() {
        let a = Args::parse_from(
            [
                "--scale",
                "tiny",
                "--seeds=5",
                "--verbose",
                "--json",
                "out.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.scale(), Scale::Tiny);
        assert_eq!(a.seeds(), 5);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get("json").as_deref(), Some("out.json"));
        assert_eq!(a.get_f64("missing", 1.5), 1.5);
    }

    #[test]
    fn make_scheduler_builds_all_six() {
        for name in SCHEDULER_NAMES {
            assert_eq!(make_scheduler(name).name(), name);
        }
    }

    #[test]
    fn run_jobs_runs_everything() {
        let jobs: Vec<usize> = (0..100).collect();
        let mut out = run_jobs(&jobs, |&j| j * 2);
        out.sort_unstable();
        assert_eq!(out, (0..100).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chart_rendering_does_not_panic() {
        let rows: Vec<Row> = SCHEDULER_NAMES
            .iter()
            .enumerate()
            .flat_map(|(i, name)| {
                (0..3).map(move |x| Row {
                    x: x as f64 * 10.0,
                    scheduler: name.to_string(),
                    task_completion: (i as f64 / 6.0 + x as f64 / 10.0).min(1.0),
                    flow_completion: 0.5,
                    app_throughput: 0.5,
                    app_task_throughput: 0.5,
                    wasted_bandwidth: 0.0,
                    wasted_bandwidth_task: 0.0,
                    seeds: 1,
                })
            })
            .collect();
        print_chart("test", &rows, |r| r.task_completion);
        print_chart("empty", &[], |r| r.task_completion);
    }

    #[test]
    fn tiny_point_runs_all_schedulers() {
        let scale = Scale::Tiny;
        let topo = scale.single_rooted_topo();
        let rows = run_point(&topo, 40.0, 2, |seed| {
            let mut cfg = workload_single_rooted(scale, &topo, seed);
            cfg.num_tasks = 5;
            cfg.generate()
        });
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.task_completion >= 0.0 && r.task_completion <= 1.0);
            assert_eq!(r.seeds, 2);
        }
    }
}
