//! End-to-end tests for the two-engine lint pass (`cargo xtask lint`):
//! the token-scanner blind spot the AST engine closes, mutation tests
//! that plant one synthetic violation per AST rule (L7–L9) and assert
//! it is reported at exactly the right file and line, marker
//! suppression + staleness round-trips, cross-engine disagreement
//! reporting, and byte-stable `--format json` output.

use std::path::Path;
use xtask::rules::{self, Finding};
use xtask::scan::SourceModel;
use xtask::{ast, findings_to_json, lint_sources};

fn keys(findings: &[Finding], rule: &str) -> Vec<(String, usize)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

/// The exact evasion the token scanner cannot see: rename the banned
/// import and call it under the new name. The substring needle is
/// `Instant::now`, which never appears in the source; the AST engine
/// resolves the alias and flags both the import and the call site.
#[test]
fn alias_rename_evades_the_token_scanner_but_not_the_ast_engine() {
    const EVASION: &str = "use std::time::Instant as T;\n\
                           pub fn f() -> u64 {\n\
                           \x20   let t = T::now();\n\
                           \x20   let _ = t;\n\
                           \x20   0\n\
                           }\n";
    let rel = "crates/core/src/evade.rs";

    // Token engine alone: blind.
    let model = SourceModel::parse(Path::new(rel), EVASION);
    let mut token = Vec::new();
    rules::check_file(&model, rules::scope_for(rel).unwrap(), rel, &mut token);
    assert!(
        token.iter().all(|f| f.rule != "L4"),
        "the token scanner is not supposed to see this evasion (if it \
         does, move the regression to a new blind spot): {token:?}"
    );

    // Full two-engine pass: caught at the import and at the call.
    let out = lint_sources(&[("crates/core/src/lib.rs", "mod evade;\n"), (rel, EVASION)]);
    assert_eq!(
        keys(&out, "L4"),
        vec![(rel.to_string(), 1), (rel.to_string(), 3)],
        "{out:?}"
    );
    // The extra AST findings are additions, not disagreements.
    assert!(keys(&out, "xcheck").is_empty(), "{out:?}");
}

/// L7 mutation: a public entry mutates occupancy with no validate gate
/// anywhere downstream — flagged at the entry's `fn` line.
#[test]
fn l7_mutation_is_flagged_at_the_entry_line() {
    let src = "pub struct S { occ: u64 }\n\
               impl S {\n\
               \x20   pub fn sneak(&mut self) { self.occ.insert_set(1); }\n\
               }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", src)]);
    assert_eq!(
        keys(&out, "L7"),
        vec![("crates/core/src/lib.rs".to_string(), 3)],
        "{out:?}"
    );
}

/// An `l7-ok` marker suppresses exactly that finding and counts as
/// used; the same marker above a non-violating entry is stale.
#[test]
fn l7_marker_suppresses_and_goes_stale() {
    let suppressed = "pub struct S { occ: u64 }\n\
                      impl S {\n\
                      \x20   // lint: l7-ok(rollback restores a previously validated state)\n\
                      \x20   pub fn sneak(&mut self) { self.occ.remove_set(1); }\n\
                      }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", suppressed)]);
    assert!(out.is_empty(), "{out:?}");

    let stale = "pub struct S { occ: u64 }\n\
                 impl S {\n\
                 \x20   // lint: l7-ok(nothing here mutates occupancy any more)\n\
                 \x20   pub fn noop(&mut self) { let _ = self; }\n\
                 }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", stale)]);
    assert_eq!(
        keys(&out, "marker"),
        vec![("crates/core/src/lib.rs".to_string(), 3)],
        "{out:?}"
    );
    assert!(out[0].message.contains("stale"), "{out:?}");
}

/// L8 mutation: a bare `==` between f64 locals in a decision-path
/// crate — flagged at the comparison line.
#[test]
fn l8_mutation_is_flagged_at_the_comparison_line() {
    let src = "pub fn eq(a: f64, b: f64) -> bool {\n\
               \x20   a == b\n\
               }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", src)]);
    assert_eq!(
        keys(&out, "L8"),
        vec![("crates/core/src/lib.rs".to_string(), 2)],
        "{out:?}"
    );
}

#[test]
fn l8_marker_suppresses_and_goes_stale() {
    let suppressed = "pub fn eq(a: f64, b: f64) -> bool {\n\
                      \x20   // lint: l8-ok(exact equality of a copied constant is the contract)\n\
                      \x20   a == b\n\
                      }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", suppressed)]);
    assert!(out.is_empty(), "{out:?}");

    // The violation was fixed with total_cmp but the marker remained.
    let stale = "pub fn eq(a: f64, b: f64) -> bool {\n\
                 \x20   // lint: l8-ok(exact equality of a copied constant is the contract)\n\
                 \x20   a.total_cmp(&b).is_eq()\n\
                 }\n";
    let out = lint_sources(&[("crates/core/src/lib.rs", stale)]);
    assert_eq!(
        keys(&out, "marker"),
        vec![("crates/core/src/lib.rs".to_string(), 2)],
        "{out:?}"
    );
    assert!(out[0].message.contains("stale"), "{out:?}");
}

/// L9 mutation: an undocumented `Ordering::Relaxed` on the lock-free
/// ring path — flagged at the atomic-op line; a justification naming
/// the ordering suppresses it; a leftover marker is stale.
#[test]
fn l9_mutation_marker_and_staleness() {
    let ring = |body: &str| {
        lint_sources(&[
            ("crates/obs/src/lib.rs", "pub mod ring;\n"),
            ("crates/obs/src/ring.rs", body),
        ])
    };

    let bare = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                pub fn bump(a: &AtomicU64) {\n\
                \x20   a.fetch_add(1, Ordering::Relaxed);\n\
                }\n";
    let out = ring(bare);
    assert_eq!(
        keys(&out, "L9"),
        vec![("crates/obs/src/ring.rs".to_string(), 3)],
        "{out:?}"
    );

    let documented = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                      pub fn bump(a: &AtomicU64) {\n\
                      \x20   // lint: l9-ok(Relaxed: monotone hint, a stale read only wastes work)\n\
                      \x20   a.fetch_add(1, Ordering::Relaxed);\n\
                      }\n";
    let out = ring(documented);
    assert!(out.is_empty(), "{out:?}");

    let stale = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                 pub fn bump(a: &AtomicU64) {\n\
                 \x20   // lint: l9-ok(Relaxed: monotone hint, a stale read only wastes work)\n\
                 \x20   a.fetch_add(1, Ordering::Relaxed);\n\
                 \x20   // lint: l9-ok(Relaxed: leftover justification, the op moved above)\n\
                 \x20   let _ = a;\n\
                 }\n";
    let out = ring(stale);
    assert_eq!(
        keys(&out, "marker"),
        vec![("crates/obs/src/ring.rs".to_string(), 5)],
        "{out:?}"
    );
}

/// A token-scanner finding the AST engine fails to reproduce in a
/// shared scope must surface as an `xcheck` engine-disagreement
/// finding; rules outside L1–L6 and files outside the module tree are
/// exempt from the cross-check.
#[test]
fn cross_check_reports_engine_disagreement() {
    let ws = ast::Workspace::from_sources(&[("crates/core/src/lib.rs", "pub fn ok() {}\n")]);
    let fabricated = vec![Finding {
        rule: "L3",
        path: "crates/core/src/lib.rs".to_string(),
        line: 1,
        snippet: "pub fn ok() {}".to_string(),
        message: "synthetic token finding the AST engine never produced".to_string(),
    }];
    let out = ast::cross_check(&fabricated, &[], &ws);
    assert_eq!(
        keys(&out, "xcheck"),
        vec![("crates/core/src/lib.rs".to_string(), 1)],
        "{out:?}"
    );
    assert!(out[0].message.contains("disagreement"), "{out:?}");

    // AST-only rules are not parity-checked …
    let l9_only = vec![Finding {
        rule: "L9",
        path: "crates/core/src/lib.rs".to_string(),
        line: 1,
        snippet: String::new(),
        message: String::new(),
    }];
    assert!(ast::cross_check(&l9_only, &[], &ws).is_empty());

    // … and neither are files the AST engine never loaded.
    let outside = vec![Finding {
        rule: "L3",
        path: "crates/core/src/orphan.rs".to_string(),
        line: 1,
        snippet: String::new(),
        message: String::new(),
    }];
    assert!(ast::cross_check(&outside, &[], &ws).is_empty());
}

/// `--format json` output is sorted by (rule, path, line, message) and
/// byte-identical across independent runs on identical sources.
#[test]
fn json_output_is_sorted_and_byte_stable() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(x: f64, y: f64) -> bool {\n\
               \x20   let _m: HashMap<u64, u64> = HashMap::new();\n\
               \x20   x == y\n\
               }\n";
    let fixture: &[(&str, &str)] = &[("crates/core/src/lib.rs", src)];

    let first = lint_sources(fixture);
    assert!(!first.is_empty(), "fixture is supposed to produce findings");
    let a = findings_to_json(&first);
    let b = findings_to_json(&lint_sources(fixture));
    assert_eq!(
        a, b,
        "two runs over identical sources must serialize identically"
    );

    // Serialization re-sorts: reversed input, same bytes.
    let mut reversed = lint_sources(fixture);
    reversed.reverse();
    assert_eq!(findings_to_json(&reversed), a);

    assert!(
        a.contains("\"rule\":\"L1\"") && a.contains("\"rule\":\"L8\""),
        "{a}"
    );
    assert_eq!(findings_to_json(&[]), "[]\n");
}

/// The acceptance bar the CI `lint-ast` job enforces: the real
/// workspace is clean under both engines — zero unsuppressed findings,
/// zero stale markers, zero engine disagreements.
#[test]
fn real_workspace_is_clean_under_both_engines() {
    // Integration tests run with the package directory as CWD.
    let root = Path::new("..");
    assert!(
        root.join("Cargo.toml").exists(),
        "expected to run from xtask/ inside the workspace"
    );
    let out = xtask::lint_workspace(root).expect("workspace lint walks the source tree");
    assert!(
        out.is_empty(),
        "workspace must stay lint-clean; run `cargo xtask lint`:\n{}",
        out.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
