//! `cargo xtask chaos --seeds N` — the seeded control-plane chaos gate.
//!
//! For each seed the driver runs the full SDN chaos harness
//! ([`taps_sdn::run_chaos`]) over the §VI testbed topology with a
//! Fig. 14-style workload, a lossy control channel (20 % drop, delivery
//! delays up to two slots), one mid-run link outage and one controller
//! crash + checkpoint-failover, and asserts the safety and determinism
//! contract from DESIGN.md §10:
//!
//! * the commit-time schedule validator never fires and the per-slot
//!   audit finds **zero** violations — no transmission without a live
//!   grant, no link-slot double-booking across epochs;
//! * exactly one controller recovery is observed (the crash is in the
//!   plan, so the failover must actually happen);
//! * a second run with identical inputs produces a **bit-identical**
//!   outcome digest (verdicts, finish times, delivered bytes, counters);
//! * as a baseline, seed-independent sanity: the reliable-channel,
//!   no-fault configuration reproduces the legacy testbed harness
//!   outcome exactly.

use taps_sdn::{run_chaos, ChannelConfig, ChaosConfig, ControllerConfig, TaskVerdict};
use taps_topology::build::{partial_fat_tree_testbed, GBPS};
use taps_topology::Topology;
use taps_workload::{FaultPlan, SizeDist, WorkloadConfig};

/// One failed per-seed check.
pub struct ChaosFailure {
    pub seed: u64,
    pub what: String,
}

fn workload(seed: u64, tasks: usize) -> taps_flowsim::Workload {
    WorkloadConfig {
        num_tasks: tasks,
        mean_flows_per_task: 2.0,
        sd_flows_per_task: 0.0,
        mean_flow_size: 100_000.0,
        sd_flow_size: 25_000.0,
        min_flow_size: 1_000.0,
        mean_deadline: 0.040,
        min_deadline: 0.002,
        arrival_rate: 500.0,
        num_hosts: 8,
        seed,
        size_dist: SizeDist::Normal,
    }
    .generate()
}

/// A switch-to-switch cable of the testbed fabric (deterministic pick:
/// first such link in id order), used for the mid-run link outage.
fn fabric_cable(topo: &Topology) -> Option<taps_topology::LinkId> {
    topo.links()
        .find(|(_, l)| topo.node(l.src).kind.is_switch() && topo.node(l.dst).kind.is_switch())
        .map(|(id, _)| id)
}

/// Runs the reliable-channel baseline once: `run_chaos` with
/// [`ChaosConfig::reliable`] must reproduce the legacy `run_testbed`
/// outcome exactly (same verdicts, same on-time/rejected/missed counts,
/// zero violations, no failovers).
fn baseline_check(topo: &Topology, failures: &mut Vec<ChaosFailure>) {
    let wl = workload(5, 20);
    let horizon = match wl.tasks.last() {
        Some(t) => t.deadline + 0.05,
        None => return,
    };
    let tb = taps_sdn::run_testbed(topo, &wl, ControllerConfig::default(), horizon);
    if tb
        .verdicts
        .iter()
        .any(|(_, v)| matches!(v, TaskVerdict::AcceptedWithPreemption(_)))
    {
        // Preempted victims diverge by design (the chaos plane revokes
        // them, the legacy harness drains them); the fixed baseline
        // workload is chosen to decide without preemptions.
        failures.push(ChaosFailure {
            seed: 0,
            what: "baseline workload unexpectedly preempts; pick another seed".into(),
        });
        return;
    }
    let ch = run_chaos(
        topo,
        &wl,
        &ChaosConfig::reliable(ControllerConfig::default(), horizon),
    );
    if ch.verdicts != tb.verdicts
        || ch.flows_on_time != tb.flows_on_time
        || ch.flows_rejected != tb.flows_rejected
        || ch.flows_missed != tb.flows_missed
    {
        failures.push(ChaosFailure {
            seed: 0,
            what: format!(
                "reliable chaos diverges from the legacy testbed \
                 (on_time {}/{}, rejected {}/{}, missed {}/{})",
                ch.flows_on_time,
                tb.flows_on_time,
                ch.flows_rejected,
                tb.flows_rejected,
                ch.flows_missed,
                tb.flows_missed
            ),
        });
    }
    if ch.violations() != 0 || !ch.failovers.is_empty() {
        failures.push(ChaosFailure {
            seed: 0,
            what: format!(
                "reliable chaos reports {} violation(s), {} failover(s)",
                ch.violations(),
                ch.failovers.len()
            ),
        });
    }
}

/// Runs one lossy-with-failover scenario for `seed`; pushes failures and
/// returns a one-line human summary.
fn chaos_seed(topo: &Topology, seed: u64, failures: &mut Vec<ChaosFailure>) -> String {
    let wl = workload(1000 + seed, 16);
    let horizon = match wl.tasks.last() {
        Some(t) => t.deadline + 0.08,
        None => return format!("seed {seed}: empty workload"),
    };
    // 20 % drop, deliveries delayed up to two slots (the retry policy's
    // base timeout covers one slot + two max delays, so a grant survives
    // well within its bounded backoff schedule).
    let mut cfg = ChaosConfig::unreliable(
        ControllerConfig::default(),
        ChannelConfig::lossy(0.2, 0.0002),
        seed,
        horizon,
    );
    let mut plan = FaultPlan::controller_outage(0.005, 0.010);
    if let Some(cable) = fabric_cable(topo) {
        plan = plan.merge(FaultPlan::link_outage(cable, 0.015, 0.022));
    }
    cfg.faults = plan.events;

    let a = run_chaos(topo, &wl, &cfg);
    let b = run_chaos(topo, &wl, &cfg);

    if a.digest != b.digest {
        failures.push(ChaosFailure {
            seed,
            what: format!(
                "double run is not bit-identical (digest {:#018x} vs {:#018x})",
                a.digest, b.digest
            ),
        });
    }
    if a.violations() != 0 {
        failures.push(ChaosFailure {
            seed,
            what: format!(
                "safety violated: {} occupancy conflict(s), {} grantless transmission slot(s)",
                a.occupancy_violations, a.grantless_transmissions
            ),
        });
    }
    if a.failovers.len() != 1 {
        failures.push(ChaosFailure {
            seed,
            what: format!(
                "expected exactly one controller recovery, observed {}",
                a.failovers.len()
            ),
        });
    }
    if a.flows_on_time == 0 {
        failures.push(ChaosFailure {
            seed,
            what: "no flow finished on time — the plane made no progress under chaos".into(),
        });
    }
    let recovery_ms = a.failovers.first().map(|r| r * 1e3).unwrap_or(f64::NAN);
    format!(
        "seed {seed}: {} flows ({} on time, {} rejected, {} missed), \
         1 crash (recovery {:.2} ms), digest {:#018x}",
        a.flows_total, a.flows_on_time, a.flows_rejected, a.flows_missed, recovery_ms, a.digest
    )
}

/// Entry point for `cargo xtask chaos --seeds N`. Returns the failures
/// (empty means the gate passes); summaries are printed as we go.
pub fn run(seeds: u64) -> Vec<ChaosFailure> {
    let topo = partial_fat_tree_testbed(GBPS);
    let mut failures = Vec::new();
    baseline_check(&topo, &mut failures);
    println!("chaos: reliable baseline matches the legacy testbed harness");
    for seed in 0..seeds {
        let line = chaos_seed(&topo, seed, &mut failures);
        println!("chaos: {line}");
    }
    failures
}
