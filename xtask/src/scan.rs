//! Comment/string-aware Rust source model for the repo-specific lints.
//!
//! The workspace is built offline (path-only dependencies), so a full
//! `syn` parse is not available; instead we build a light-weight *source
//! model* that is exact about the three things the lint rules need:
//!
//! 1. **code vs. non-code** — string literals, char literals, raw
//!    strings, and all comment forms are blanked out so rules never match
//!    inside them;
//! 2. **test vs. library code** — `#[cfg(test)]` items (including whole
//!    `mod tests { .. }` blocks) and `#[test]` functions are tracked by
//!    brace matching so rules only fire on non-test library code;
//! 3. **allowlist markers** — `// lint: <rule>-ok(reason)` comments are
//!    collected per line; a marker suppresses findings on its own line or
//!    on the next line, and markers that suppress nothing are themselves
//!    reported as stale.

use std::fmt;
use std::path::{Path, PathBuf};

/// Allowlist marker kinds, written as `// lint: <name>(reason)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `nondeterministic-ok` — suppresses L1 (hash collections) and L4
    /// (wall clock / unseeded RNG).
    NondeterministicOk,
    /// `cast-ok` — suppresses L2 (bare `as` numeric casts).
    CastOk,
    /// `panic-ok` — suppresses L3 (unwrap/expect/panic in lib code).
    PanicOk,
    /// `l5-ok` — suppresses L5 (indefinite `loop` in control-plane code);
    /// the reason must state the termination/retry bound.
    L5Ok,
    /// `l6-ok` — suppresses L6 (ad-hoc stdout/stderr printing in library
    /// code; diagnostics go through the structured trace sink).
    L6Ok,
    /// `l7-ok` — suppresses L7 (schedule-mutating public entry point
    /// with no validate-gated commit on its call paths); the reason must
    /// state why the mutation needs no commit-time validation.
    L7Ok,
    /// `l8-ok` — suppresses L8 (bare float comparison in decision-path
    /// code; completion/priority orderings go through `total_cmp` or the
    /// EPS helpers).
    L8Ok,
    /// `l9-ok` — suppresses L9 (atomic memory-ordering use); the reason
    /// must start with `<Ordering>:` naming the ordering at the site so
    /// the justification goes stale if the ordering changes.
    L9Ok,
    /// `l10-ok` — suppresses L10 (unbounded channel constructors or
    /// queue growth in service request paths); the reason must start
    /// with `bound:` naming the capacity that keeps the site finite.
    L10Ok,
}

impl MarkerKind {
    pub fn name(self) -> &'static str {
        match self {
            MarkerKind::NondeterministicOk => "nondeterministic-ok",
            MarkerKind::CastOk => "cast-ok",
            MarkerKind::PanicOk => "panic-ok",
            MarkerKind::L5Ok => "l5-ok",
            MarkerKind::L6Ok => "l6-ok",
            MarkerKind::L7Ok => "l7-ok",
            MarkerKind::L8Ok => "l8-ok",
            MarkerKind::L9Ok => "l9-ok",
            MarkerKind::L10Ok => "l10-ok",
        }
    }
}

impl fmt::Display for MarkerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One allowlist marker found in a comment.
#[derive(Clone, Debug)]
pub struct Marker {
    pub kind: MarkerKind,
    /// 1-based line the marker comment sits on.
    pub line: usize,
    /// The justification inside the parentheses.
    pub reason: String,
    /// Whether any finding was suppressed by this marker (set by rules).
    pub used: std::cell::Cell<bool>,
}

/// A parsed source file ready for rule matching.
pub struct SourceModel {
    pub path: PathBuf,
    /// Original text, split into lines (no trailing newline).
    pub raw_lines: Vec<String>,
    /// Same line structure with comments and literal contents blanked.
    pub code_lines: Vec<String>,
    /// `is_test[i]` — 1-based-line `i+1` is inside a `#[cfg(test)]` item
    /// or a `#[test]` function.
    pub is_test: Vec<bool>,
    /// All allowlist markers, in line order.
    pub markers: Vec<Marker>,
}

impl SourceModel {
    /// Parses a file from disk.
    pub fn load(path: &Path) -> std::io::Result<SourceModel> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceModel::parse(path, &text))
    }

    /// Parses source text (exposed for the linter's own tests).
    pub fn parse(path: &Path, text: &str) -> SourceModel {
        let (code, comments) = blank_non_code(text);
        let raw_lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let code_lines: Vec<String> = code.lines().map(|l| l.to_string()).collect();
        let is_test = mark_test_regions(&code_lines);
        let markers = parse_markers(&comments);
        SourceModel {
            path: path.to_path_buf(),
            raw_lines,
            code_lines,
            is_test,
            markers,
        }
    }

    /// True when 1-based `line` is inside test-only code.
    pub fn line_is_test(&self, line: usize) -> bool {
        self.is_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Finds a marker of `kind` covering 1-based `line` (same line
    /// preferred, else the line directly above) and records it as used.
    pub fn marker_for(&self, kind: MarkerKind, line: usize) -> Option<&Marker> {
        let m = self
            .markers
            .iter()
            .find(|m| m.kind == kind && m.line == line)
            .or_else(|| {
                self.markers
                    .iter()
                    .find(|m| m.kind == kind && m.line + 1 == line)
            })?;
        m.used.set(true);
        Some(m)
    }
}

/// Replaces the contents of comments, string literals, char literals, and
/// raw strings with spaces (newlines preserved), returning the blanked
/// text plus the extracted comment text per line (for marker parsing).
fn blank_non_code(text: &str) -> (String, Vec<String>) {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let n_lines = text.lines().count().max(1);
    let mut comments: Vec<String> = vec![String::new(); n_lines + 1];
    let mut line = 0usize;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            '/' if next == Some('/') => {
                // Line comment: capture text, blank it.
                while i < chars.len() && chars[i] != '\n' {
                    if let Some(buf) = comments.get_mut(line) {
                        buf.push(chars[i]);
                    }
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // Block comment (nestable).
                let mut depth = 0usize;
                while i < chars.len() {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('*') {
                        depth += 1;
                        out.push_str("  ");
                        comments[line].push_str("/*");
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        depth -= 1;
                        out.push_str("  ");
                        comments[line].push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if c == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            out.push(' ');
                            if let Some(buf) = comments.get_mut(line) {
                                buf.push(c);
                            }
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain string literal.
                out.push('"');
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    if c == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        if c == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            out.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // Raw string r"..." / r#"..."# / br#"..."# etc.
                let start = i;
                while chars.get(i) == Some(&'b') || chars.get(i) == Some(&'r') {
                    out.push(chars[i]);
                    i += 1;
                }
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    out.push('#');
                    i += 1;
                }
                debug_assert!(chars.get(i) == Some(&'"'), "raw string at {start}");
                out.push('"');
                i += 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if chars[i] == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime/loop label.
                if next == Some('\\') {
                    // Escaped char literal '\n', '\u{..}', ...
                    out.push('\'');
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        out.push(' ');
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                    // One-char literal 'x'.
                    out.push_str("'.'");
                    i += 3;
                } else {
                    // Lifetime or label: leave as code.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    let per_line_comments = comments.into_iter().take(n_lines).collect();
    (out, per_line_comments)
}

/// True when `chars[i]` starts a raw-string prefix (`r"`, `r#`, `br"`,
/// `br#`) that is not just part of an identifier like `for` or `barr`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Marks lines covered by `#[cfg(test)]` items and `#[test]` functions.
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code_lines.len()];
    for (idx, l) in code_lines.iter().enumerate() {
        let trimmed = l.trim_start();
        let is_attr = trimmed.starts_with("#[")
            && (trimmed.contains("cfg(test") || trimmed.contains("#[test]"));
        if !is_attr {
            continue;
        }
        // The attribute applies to the next item: walk forward to the
        // item's opening `{` (or a terminating `;` for e.g. `use`
        // declarations) and mark through the matching close brace.
        let mut brace = 0i32;
        let mut nested = 0i32; // parens/brackets, so `[u8; 3]` isn't a terminator
        let mut opened = false;
        'item: for (j, line) in code_lines.iter().enumerate().skip(idx) {
            is_test[j] = true;
            for ch in line.chars() {
                match ch {
                    '{' => {
                        brace += 1;
                        opened = true;
                    }
                    '}' => {
                        brace -= 1;
                        if opened && brace == 0 {
                            break 'item;
                        }
                    }
                    '(' | '[' => nested += 1,
                    ')' | ']' => nested -= 1,
                    ';' if !opened && nested == 0 => break 'item,
                    _ => {}
                }
            }
        }
    }
    is_test
}

/// Extracts `lint: <name>(reason)` markers from per-line comment text.
fn parse_markers(comments: &[String]) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (idx, text) in comments.iter().enumerate() {
        let Some(pos) = text.find("lint:") else {
            continue;
        };
        let rest = text[pos + 5..].trim_start();
        let kind = if rest.starts_with("nondeterministic-ok") {
            MarkerKind::NondeterministicOk
        } else if rest.starts_with("cast-ok") {
            MarkerKind::CastOk
        } else if rest.starts_with("panic-ok") {
            MarkerKind::PanicOk
        } else if rest.starts_with("l5-ok") {
            MarkerKind::L5Ok
        } else if rest.starts_with("l6-ok") {
            MarkerKind::L6Ok
        } else if rest.starts_with("l7-ok") {
            MarkerKind::L7Ok
        } else if rest.starts_with("l8-ok") {
            MarkerKind::L8Ok
        } else if rest.starts_with("l10-ok") {
            MarkerKind::L10Ok
        } else if rest.starts_with("l9-ok") {
            MarkerKind::L9Ok
        } else {
            continue;
        };
        let reason = rest
            .find('(')
            .and_then(|open| {
                rest[open + 1..]
                    .find(')')
                    .map(|close| &rest[open + 1..open + 1 + close])
            })
            .unwrap_or("")
            .trim()
            .to_string();
        markers.push(Marker {
            kind,
            line: idx + 1,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    markers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model(src: &str) -> SourceModel {
        SourceModel::parse(Path::new("test.rs"), src)
    }

    #[test]
    fn blanks_strings_and_comments() {
        let m = model("let x = \"HashMap\"; // HashMap here\nlet y = HashMap::new();\n");
        assert!(!m.code_lines[0].contains("HashMap"));
        assert!(m.code_lines[1].contains("HashMap"));
    }

    #[test]
    fn blanks_raw_strings_and_char_literals() {
        let m =
            model("let s = r#\"unwrap() as u64\"#;\nlet c = 'a';\nlet lt: &'static str = \"x\";\n");
        assert!(!m.code_lines[0].contains("unwrap"));
        assert!(!m.code_lines[0].contains("as u64"));
        assert!(m.code_lines[2].contains("'static"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let m = model(src);
        assert!(!m.line_is_test(1));
        assert!(m.line_is_test(2));
        assert!(m.line_is_test(4));
        assert!(!m.line_is_test(6));
    }

    #[test]
    fn markers_parse_with_reasons() {
        let m = model("// lint: panic-ok(invariant: slot fits)\nx.unwrap();\n");
        let mk = m.marker_for(MarkerKind::PanicOk, 2).expect("marker");
        assert_eq!(mk.reason, "invariant: slot fits");
        assert!(mk.used.get());
    }
}
