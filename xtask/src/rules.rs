//! The token-scanner lint rules (L1–L6 and L10) plus allowlist hygiene.
//!
//! | rule | what                                                   | scope                              | allowlist marker        |
//! |------|--------------------------------------------------------|------------------------------------|-------------------------|
//! | L1   | `HashMap`/`HashSet` in decision-path code              | core, sdn, flowsim, baselines      | `nondeterministic-ok`   |
//! | L2   | bare `as` numeric casts on slot/`u64` arithmetic       | timeline, core                     | `cast-ok`               |
//! | L3   | `unwrap`/`expect`/`panic!` in non-test library code    | every workspace lib crate          | `panic-ok`              |
//! | L4   | wall clock / unseeded RNG in deterministic sim crates  | timeline, topology, core, flowsim, workload, baselines | `nondeterministic-ok` |
//! | L5   | indefinite `loop` in control-plane (retry) code        | sdn, service                       | `l5-ok`                 |
//! | L6   | ad-hoc `println!`/`eprintln!` in library code          | every workspace lib crate          | `l6-ok`                 |
//! | L10  | unbounded channels / queue growth in request paths     | service                            | `l10-ok(bound: ...)`    |
//!
//! Markers are `// lint: <name>-ok(reason)` on the offending line or the
//! line directly above; a marker must carry a non-empty reason and must
//! suppress at least one finding, otherwise it is reported as stale.

use crate::scan::{MarkerKind, SourceModel};
use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:{}", self.rule, self.path, self.line)?;
        writeln!(f, "  {}", self.snippet.trim())?;
        write!(f, "  {}", self.message)
    }
}

/// Which rules apply to a file, decided from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    pub l1: bool,
    pub l2: bool,
    pub l3: bool,
    pub l4: bool,
    pub l5: bool,
    pub l6: bool,
    pub l10: bool,
}

/// Crates whose decision paths must not iterate hash collections (L1).
const L1_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sdn/",
    "crates/flowsim/",
    "crates/baselines/",
    "crates/service/",
];
/// Crates doing slot arithmetic where bare `as` casts are banned (L2).
const L2_CRATES: &[&str] = &["crates/timeline/", "crates/core/"];
/// Deterministic simulation crates where wall clock / ambient RNG are banned (L4).
const L4_CRATES: &[&str] = &[
    "crates/timeline/",
    "crates/topology/",
    "crates/core/",
    "crates/flowsim/",
    "crates/workload/",
    "crates/baselines/",
    "crates/sdn/",
    "crates/service/",
];
/// Control-plane crates where indefinite `loop`s are banned (L5): every
/// retry site must be bounded by a [`RetryPolicy`]-style max-attempts
/// budget, or document its termination argument with an `l5-ok` marker.
const L5_CRATES: &[&str] = &["crates/sdn/", "crates/service/"];
/// Live-service crates where every queue must be bounded (L10): a
/// long-lived daemon's request path must not hold an unbounded channel
/// or grow a queue without a documented capacity.
const L10_CRATES: &[&str] = &["crates/service/"];

/// Decides the rule set for a workspace-relative path, or `None` when the
/// file is out of scope entirely (tests, benches, examples, bins, the
/// compat shims, and xtask itself).
pub fn scope_for(rel: &str) -> Option<RuleScope> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    // Compat shims emulate third-party crates; xtask is the lint tool;
    // the bench crate is a measurement harness (panicking on setup
    // failure is fine there, and it is not part of the scheduling library).
    if rel.starts_with("compat/")
        || rel.starts_with("xtask/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("target/")
    {
        return None;
    }
    // Only library code: skip integration tests, benches, examples, and
    // binary targets (CLIs may panic on bad input; they are not part of
    // the deterministic scheduling library).
    if rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/bin/")
        || rel.ends_with("build.rs")
    {
        return None;
    }
    if !rel.contains("/src/") && !rel.starts_with("src/") {
        return None;
    }
    Some(RuleScope {
        l1: L1_CRATES.iter().any(|c| rel.starts_with(c)),
        l2: L2_CRATES.iter().any(|c| rel.starts_with(c)),
        l3: true,
        l4: L4_CRATES.iter().any(|c| rel.starts_with(c)),
        l5: L5_CRATES.iter().any(|c| rel.starts_with(c)),
        l6: true,
        l10: L10_CRATES.iter().any(|c| rel.starts_with(c)),
    })
}

/// Runs every applicable rule over one parsed file.
pub fn check_file(model: &SourceModel, scope: RuleScope, rel: &str, out: &mut Vec<Finding>) {
    if scope.l1 {
        check_tokens(
            model,
            rel,
            "L1",
            &["HashMap", "HashSet"],
            MarkerKind::NondeterministicOk,
            "hash collection in a decision path: iteration order is nondeterministic; \
             use BTreeMap/BTreeSet or an explicit sort, or allowlist with \
             `// lint: nondeterministic-ok(reason)`",
            out,
        );
    }
    if scope.l2 {
        check_casts(model, rel, out);
    }
    if scope.l3 {
        check_tokens(
            model,
            rel,
            "L3",
            &[
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ],
            MarkerKind::PanicOk,
            "panic path in non-test library code: propagate a Result or document \
             the invariant with `// lint: panic-ok(reason)`",
            out,
        );
    }
    if scope.l5 {
        check_indefinite_loops(model, rel, out);
    }
    if scope.l10 {
        check_unbounded_queues(model, rel, out);
    }
    if scope.l6 {
        check_tokens(
            model,
            rel,
            "L6",
            &["println!", "eprintln!", "print!", "eprint!", "dbg!"],
            MarkerKind::L6Ok,
            "ad-hoc stdout/stderr printing in library code: emit a structured \
             `taps_obs::TraceEvent` through the crate's trace sink (or return the \
             data), or allowlist with `// lint: l6-ok(reason)`",
            out,
        );
    }
    if scope.l4 {
        check_tokens(
            model,
            rel,
            "L4",
            &[
                "Instant::now",
                "SystemTime",
                "thread_rng",
                "from_entropy",
                "rand::random",
                "OsRng",
                "getrandom",
            ],
            MarkerKind::NondeterministicOk,
            "wall clock / ambient randomness in a deterministic simulation crate: \
             take the seed or timestamp as an input (workloads and fault plans \
             must derive from a seeded StdRng), or allowlist with \
             `// lint: nondeterministic-ok(reason)`",
            out,
        );
    }
}

/// Reports any allowlist marker that suppressed nothing (stale) or that
/// carries no reason. Call after every rule ran over the file.
pub fn check_marker_hygiene(model: &SourceModel, rel: &str, out: &mut Vec<Finding>) {
    for m in &model.markers {
        if m.reason.is_empty() {
            out.push(Finding {
                rule: "marker",
                path: rel.to_string(),
                line: m.line,
                snippet: model.raw_lines.get(m.line - 1).cloned().unwrap_or_default(),
                message: format!(
                    "allowlist marker `{}` has no reason — write `// lint: {}(why)`",
                    m.kind, m.kind
                ),
            });
        } else if !m.used.get() {
            out.push(Finding {
                rule: "marker",
                path: rel.to_string(),
                line: m.line,
                snippet: model.raw_lines.get(m.line - 1).cloned().unwrap_or_default(),
                message: format!(
                    "stale allowlist marker `{}`: it suppresses no finding — remove it",
                    m.kind
                ),
            });
        }
    }
}

/// Substring-token rule driver shared by L1, L3, and L4.
#[allow(clippy::too_many_arguments)]
fn check_tokens(
    model: &SourceModel,
    rel: &str,
    rule: &'static str,
    needles: &[&str],
    marker: MarkerKind,
    message: &str,
    out: &mut Vec<Finding>,
) {
    for (idx, code) in model.code_lines.iter().enumerate() {
        let line = idx + 1;
        if model.line_is_test(line) {
            continue;
        }
        let hit = needles.iter().any(|n| {
            code.match_indices(n).any(|(pos, _)| {
                // Require a word boundary before identifier-like needles so
                // e.g. `NoHashMap` or a method named `do_unwrap()` can't
                // accidentally match.
                let first = n.chars().next().unwrap_or(' ');
                if first.is_alphanumeric() {
                    let prev = code[..pos].chars().next_back();
                    !matches!(prev, Some(p) if p.is_alphanumeric() || p == '_')
                } else {
                    true
                }
            })
        });
        if !hit {
            continue;
        }
        if model.marker_for(marker, line).is_some() {
            continue;
        }
        out.push(Finding {
            rule,
            path: rel.to_string(),
            line,
            snippet: model.raw_lines.get(idx).cloned().unwrap_or_default(),
            message: message.to_string(),
        });
    }
}

/// L5: flags the indefinite `loop` keyword in non-test control-plane
/// library code. A lossy control plane must never retry forever: retry
/// sites go through [`taps_sdn::RetryPolicy`]'s `max_attempts` budget
/// (bounded `for`/iterator loops pass the rule by construction), and any
/// remaining `loop` must carry a `// lint: l5-ok(reason)` marker whose
/// reason states the termination bound.
fn check_indefinite_loops(model: &SourceModel, rel: &str, out: &mut Vec<Finding>) {
    for (idx, code) in model.code_lines.iter().enumerate() {
        let line = idx + 1;
        if model.line_is_test(line) {
            continue;
        }
        // Word-bounded on both sides: `loop` and `'outer: loop` match,
        // identifiers like `event_loop` or `loop_count` do not.
        let hit = code.match_indices("loop").any(|(pos, _)| {
            let prev = code[..pos].chars().next_back();
            let next = code[pos + 4..].chars().next();
            !matches!(prev, Some(p) if p.is_alphanumeric() || p == '_')
                && !matches!(next, Some(n) if n.is_alphanumeric() || n == '_')
        });
        if !hit {
            continue;
        }
        if model.marker_for(MarkerKind::L5Ok, line).is_some() {
            continue;
        }
        out.push(Finding {
            rule: "L5",
            path: rel.to_string(),
            line,
            snippet: model.raw_lines.get(idx).cloned().unwrap_or_default(),
            message: "indefinite `loop` in control-plane code: retries must be bounded \
                      (route them through `RetryPolicy::max_attempts`), or document the \
                      termination bound with `// lint: l5-ok(reason)`"
                .to_string(),
        });
    }
}

/// Tokens that allocate or grow a queue/channel on a request path.
const L10_TOKENS: &[&str] = &[
    "VecDeque::new(",
    "VecDeque::with_capacity(",
    ".push_back(",
    ".push_front(",
    ".extend_from_slice(",
    "mpsc::channel",
    "sync_channel",
    "unbounded",
];

/// L10: every queue in a live-service request path must be bounded. A
/// daemon that accepts work from the network amplifies any unbounded
/// buffer into a memory-exhaustion path under overload, so channel
/// constructors and queue-growth calls in `crates/service` must carry a
/// `// lint: l10-ok(bound: ...)` marker whose reason names the capacity
/// (and who enforces it). A marker whose reason does not start with
/// `bound` is reported: the justification must name the bound, not just
/// assert safety.
fn check_unbounded_queues(model: &SourceModel, rel: &str, out: &mut Vec<Finding>) {
    for (idx, code) in model.code_lines.iter().enumerate() {
        let line = idx + 1;
        if model.line_is_test(line) {
            continue;
        }
        if !L10_TOKENS.iter().any(|n| code.contains(n)) {
            continue;
        }
        match model.marker_for(MarkerKind::L10Ok, line) {
            Some(m) if m.reason.trim_start().starts_with("bound") => continue,
            Some(m) => {
                out.push(Finding {
                    rule: "L10",
                    path: rel.to_string(),
                    line,
                    snippet: model.raw_lines.get(idx).cloned().unwrap_or_default(),
                    message: format!(
                        "`l10-ok` reason must start with `bound:` naming the capacity \
                         that keeps this queue finite (got `{}`)",
                        m.reason
                    ),
                });
            }
            None => {
                out.push(Finding {
                    rule: "L10",
                    path: rel.to_string(),
                    line,
                    snippet: model.raw_lines.get(idx).cloned().unwrap_or_default(),
                    message: "queue/channel growth in a service request path: bound it \
                              (cap + shed/backpressure) and document the capacity with \
                              `// lint: l10-ok(bound: ...)`"
                        .to_string(),
                });
            }
        }
    }
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// L2: flags `<expr> as <numeric-type>` outside test code. The repo rule
/// is stricter than clippy's truncation lint: *every* bare numeric `as`
/// in the slot-arithmetic crates must either go through the checked
/// helpers in `taps_timeline::slots` / `try_from`, or carry a
/// `// lint: cast-ok(reason)` marker.
fn check_casts(model: &SourceModel, rel: &str, out: &mut Vec<Finding>) {
    for (idx, code) in model.code_lines.iter().enumerate() {
        let line = idx + 1;
        if model.line_is_test(line) {
            continue;
        }
        let mut found = false;
        for (pos, _) in code.match_indices(" as ") {
            let rest = code[pos + 4..].trim_start();
            let is_numeric = NUMERIC_TYPES.iter().any(|t| {
                rest.starts_with(t)
                    && !matches!(
                        rest[t.len()..].chars().next(),
                        Some(c) if c.is_alphanumeric() || c == '_'
                    )
            });
            if is_numeric {
                found = true;
                break;
            }
        }
        if !found {
            continue;
        }
        if model.marker_for(MarkerKind::CastOk, line).is_some() {
            continue;
        }
        out.push(Finding {
            rule: "L2",
            path: rel.to_string(),
            line,
            snippet: model.raw_lines.get(idx).cloned().unwrap_or_default(),
            message: "bare `as` numeric cast in slot-arithmetic code: use \
                      `taps_timeline::slots` helpers or `try_from`, or allowlist with \
                      `// lint: cast-ok(reason)`"
                .to_string(),
        });
    }
}

/// Lints one file from disk; returns findings (possibly empty).
pub fn lint_path(root: &Path, rel: &str, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let Some(scope) = scope_for(rel) else {
        return Ok(());
    };
    let model = SourceModel::load(&root.join(rel))?;
    check_file(&model, scope, rel, out);
    check_marker_hygiene(&model, rel, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn l5_findings(src: &str) -> Vec<Finding> {
        let model = SourceModel::parse(Path::new("crates/sdn/src/x.rs"), src);
        let mut out = Vec::new();
        check_indefinite_loops(&model, "crates/sdn/src/x.rs", &mut out);
        check_marker_hygiene(&model, "crates/sdn/src/x.rs", &mut out);
        out
    }

    #[test]
    fn l5_flags_bare_loop_and_respects_marker() {
        let out = l5_findings("fn f() {\n    loop {\n        break;\n    }\n}\n");
        assert_eq!(out.len(), 1, "bare loop must be flagged: {out:?}");
        assert_eq!(out[0].rule, "L5");
        assert_eq!(out[0].line, 2);

        let out = l5_findings(
            "fn f() {\n    // lint: l5-ok(terminates: drains a finite queue)\n    loop {\n        break;\n    }\n}\n",
        );
        assert!(out.is_empty(), "marked loop must pass: {out:?}");
    }

    #[test]
    fn l5_ignores_identifiers_labels_and_test_code() {
        let out =
            l5_findings("fn f(event_loop: usize) -> usize {\n    event_loop + loop_count()\n}\n");
        assert!(out.is_empty(), "identifiers are not the keyword: {out:?}");

        let out = l5_findings("#[cfg(test)]\nmod tests {\n    fn t() {\n        loop {\n            break;\n        }\n    }\n}\n");
        assert!(out.is_empty(), "test code is out of scope: {out:?}");

        // A labelled loop is still an indefinite loop.
        let out = l5_findings("fn f() {\n    'outer: loop {\n        break 'outer;\n    }\n}\n");
        assert_eq!(out.len(), 1, "labelled loop must be flagged: {out:?}");
    }

    #[test]
    fn stale_l5_marker_is_reported() {
        let out = l5_findings("fn f() {\n    // lint: l5-ok(nothing to suppress)\n    let x = 1;\n    let _ = x;\n}\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "marker");
    }

    fn l6_findings(src: &str) -> Vec<Finding> {
        let rel = "crates/core/src/x.rs";
        let model = SourceModel::parse(Path::new(rel), src);
        let mut out = Vec::new();
        let scope = scope_for(rel).unwrap();
        check_file(&model, scope, rel, &mut out);
        check_marker_hygiene(&model, rel, &mut out);
        out.into_iter().filter(|f| f.rule != "L3").collect()
    }

    #[test]
    fn l6_flags_printing_and_respects_marker() {
        let out = l6_findings("fn f() {\n    println!(\"debug\");\n}\n");
        assert_eq!(out.len(), 1, "println must be flagged: {out:?}");
        assert_eq!(out[0].rule, "L6");
        assert_eq!(out[0].line, 2);

        let out = l6_findings("fn f() {\n    eprintln!(\"x\");\n    dbg!(1);\n}\n");
        assert_eq!(out.len(), 2, "eprintln and dbg must be flagged: {out:?}");

        let out = l6_findings(
            "fn f() {\n    // lint: l6-ok(CLI-facing progress line behind a verbose flag)\n    println!(\"x\");\n}\n",
        );
        assert!(out.is_empty(), "marked print must pass: {out:?}");
    }

    #[test]
    fn l6_ignores_test_code_and_identifiers() {
        let out = l6_findings(
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        println!(\"ok in tests\");\n    }\n}\n",
        );
        assert!(out.is_empty(), "test code is out of scope: {out:?}");

        let out = l6_findings("fn f(pretty_print: usize) -> usize {\n    pretty_print\n}\n");
        assert!(out.is_empty(), "identifiers are not macros: {out:?}");
    }

    #[test]
    fn l5_scope_is_the_control_plane_crates() {
        assert!(scope_for("crates/sdn/src/controller.rs").unwrap().l5);
        assert!(scope_for("crates/service/src/uds.rs").unwrap().l5);
        assert!(!scope_for("crates/core/src/scheduler.rs").unwrap().l5);
        assert!(scope_for("crates/sdn/src/chaos.rs").unwrap().l5);
        assert!(scope_for("crates/sdn/tests/chaos_proptests.rs").is_none());
    }

    fn l10_findings(src: &str) -> Vec<Finding> {
        let rel = "crates/service/src/x.rs";
        let model = SourceModel::parse(Path::new(rel), src);
        let mut out = Vec::new();
        check_unbounded_queues(&model, rel, &mut out);
        check_marker_hygiene(&model, rel, &mut out);
        out
    }

    #[test]
    fn l10_flags_queue_growth_without_a_bound() {
        let out = l10_findings(
            "fn f(q: &mut std::collections::VecDeque<u8>) {\n    q.push_back(1);\n}\n",
        );
        assert_eq!(out.len(), 1, "unmarked push_back must be flagged: {out:?}");
        assert_eq!(out[0].rule, "L10");
        assert_eq!(out[0].line, 2);

        let out = l10_findings(
            "use std::collections::VecDeque;\nfn f() -> VecDeque<u8> {\n    VecDeque::new()\n}\n",
        );
        assert_eq!(
            out.len(),
            1,
            "unmarked constructor must be flagged: {out:?}"
        );
    }

    #[test]
    fn l10_accepts_a_bound_reason_and_rejects_a_vague_one() {
        let out = l10_findings(
            "fn f(q: &mut std::collections::VecDeque<u8>) {\n    // lint: l10-ok(bound: queue_cap — on_submit sheds beyond it)\n    q.push_back(1);\n}\n",
        );
        assert!(out.is_empty(), "bound-documented growth must pass: {out:?}");

        let out = l10_findings(
            "fn f(q: &mut std::collections::VecDeque<u8>) {\n    // lint: l10-ok(this is fine, trust me)\n    q.push_back(1);\n}\n",
        );
        assert_eq!(out.len(), 1, "vague reason must be rejected: {out:?}");
        assert!(
            out[0].message.contains("must start with `bound:`"),
            "{out:?}"
        );
    }

    #[test]
    fn l10_scope_is_the_service_crate_only() {
        assert!(scope_for("crates/service/src/transport.rs").unwrap().l10);
        assert!(!scope_for("crates/sdn/src/controller.rs").unwrap().l10);
        assert!(scope_for("crates/service/src/bin/taps-serviced.rs").is_none());
        assert!(scope_for("crates/service/tests/service.rs").is_none());
    }
}
