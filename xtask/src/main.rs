//! `cargo xtask <task>` — workspace automation.
//!
//! Tasks:
//! * `lint` — run the repo-specific determinism & safety lints over
//!   every workspace crate with both the token scanner (L1–L6, L10) and
//!   the AST engine (L1–L9), cross-checking the two. Exits non-zero on any
//!   finding. `--format json` prints a stable sorted findings array.
//! * `chaos --seeds N` — run the seeded control-plane chaos gate: lossy
//!   channels + link outage + controller crash/failover per seed, with
//!   safety and bit-identical-determinism assertions (DESIGN.md §10).
//! * `bench-smoke` — run `bench_admission` with a tiny config in release
//!   mode and fail on any admission hot-path regression (DESIGN.md §12).
//! * `soak` — run the deterministic live-service soak gate: overload
//!   burst, shedding audit, byte-identical double runs (DESIGN.md §15).
//! * `scenarios` — replay the golden scenario matrix (weighted,
//!   close-to-deadline, trace-shaped, incast, straggler, diurnal ramp)
//!   through the seven-scheduler comparison and fail on digest or
//!   invariant drift (DESIGN.md §16).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args
                .windows(2)
                .any(|w| w[0] == "--format" && w[1] == "json");
            lint(args.iter().any(|a| a == "--quiet" || a == "-q"), json)
        }
        Some("chaos") => chaos(&args[1..]),
        Some("trace") => trace(),
        Some("bench-smoke") => bench_smoke(),
        Some("soak") => soak(&args[1..]),
        Some("scenarios") => scenarios(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo xtask <task>

tasks:
  lint [--quiet] [--format json]
                     repo-specific determinism & safety lints, run by two engines:
                     the token scanner (L1-L6, L10) and the syn-based AST engine (L1-L9,
                     cross-checked against the scanner); --format json emits a
                     stable sorted findings array; see DESIGN.md §13
  chaos --seeds N    seeded control-plane chaos gate (lossy channels, link outage,
                     controller crash/failover); asserts safety + determinism
  trace              golden-trace gate: runs the traced testbed + chaos scenarios,
                     asserts byte-identical re-runs, replays the event stream through
                     the invariant validator, writes results/TRACE_*.jsonl
  bench-smoke        admission-latency regression gate: runs bench_admission with a
                     tiny config in release mode, fails if the fast or delta engine
                     is slower than legacy (speedup_p50 < 1.0) at any k, if the
                     sharded k=32 section is slower than per-task sequential
                     admission, if any schedule diverged, or if a rerun of the
                     sharded configuration changes the schedule fingerprint
  soak [--small]     deterministic live-service soak gate (DESIGN.md §15): two
                     seeds, paper-scale k=16 fat-tree, overload burst phase;
                     asserts zero invariant violations, byte-identical double
                     runs (digests, shed lists, metrics), honest shed reasons,
                     and the sustained-throughput floor; --small runs the k=4
                     unit-test variant
  scenarios [--update]
                     golden scenario-matrix gate (DESIGN.md §16): every scenario
                     family (weighted, close-to-deadline, websearch/data-mining
                     sizes, incast, straggler, diurnal ramp) x 2 seeds through
                     the full seven-scheduler comparison; asserts byte-identical
                     double runs, digests pinned in tests/goldens/
                     scenario_matrix.json, weight-1.0 neutrality, and chaos
                     survival of the incast family; --update refreshes the
                     pinned manifest after an intentional change";

fn chaos(args: &[String]) -> ExitCode {
    let mut seeds: u64 = 8;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("chaos: --seeds needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("chaos: unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let failures = xtask::chaos::run(seeds);
    if failures.is_empty() {
        println!("xtask chaos: {seeds} seed(s) clean (safety + bit-identical determinism)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("chaos FAILURE (seed {}): {}", f.seed, f.what);
        }
        eprintln!("xtask chaos: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn scenarios(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--table") {
        xtask::scenarios::print_table();
        return ExitCode::SUCCESS;
    }
    let update = args.iter().any(|a| a == "--update");
    if let Some(bad) = args.iter().find(|a| *a != "--update") {
        eprintln!("scenarios: unknown argument `{bad}`");
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (lines, failures) = xtask::scenarios::run(&workspace_root(), update);
    for l in &lines {
        println!("xtask scenarios: {l}");
    }
    if failures.is_empty() {
        println!(
            "xtask scenarios: clean (matrix digests pinned, byte-identical double runs, \
             weight-1.0 neutrality, incast chaos survival)"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("scenarios FAILURE ({}): {}", f.cell, f.what);
        }
        eprintln!("xtask scenarios: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn trace() -> ExitCode {
    let root = workspace_root();
    let (summaries, failures) = xtask::trace::run(&root);
    for s in &summaries {
        let r = &s.report;
        println!(
            "xtask trace: {} ok — {} events, {} flows, {} commits, {} grants; \
             checks: {} exclusivity, {} deadline, {} agreement -> {}",
            s.scenario,
            r.events,
            r.flows,
            r.commits,
            r.grants,
            r.exclusivity_checks,
            r.deadline_checks,
            r.agreement_checks,
            s.artifact
        );
    }
    if failures.is_empty() {
        println!("xtask trace: clean (byte-identical re-runs + replay invariants)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("trace FAILURE ({}): {}", f.scenario, f.what);
        }
        eprintln!("xtask trace: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn bench_smoke() -> ExitCode {
    let root = workspace_root();
    let (rows, sharded, failures) = xtask::bench_smoke::run(&root);
    for r in &rows {
        println!(
            "xtask bench-smoke: k={} fast {:.1}x, delta {:.1}x over legacy p50",
            r.k, r.speedup_p50, r.speedup_p50_delta
        );
    }
    if let Some(s) = &sharded {
        println!(
            "xtask bench-smoke: k={} sharded batched {:.1}x, sharded {:.1}x over per-task \
             sequential, {:.0} admissions/s",
            s.k, s.speedup_batched, s.speedup_sharded, s.admissions_per_sec
        );
    }
    if failures.is_empty() {
        println!("xtask bench-smoke: clean (no admission hot-path regression)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-smoke FAILURE: {}", f.what);
        }
        eprintln!("xtask bench-smoke: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn soak(args: &[String]) -> ExitCode {
    let cfg = if args.iter().any(|a| a == "--small") {
        taps_service::SoakConfig::small()
    } else {
        taps_service::SoakConfig::default()
    };
    if let Some(bad) = args.iter().find(|a| *a != "--small") {
        eprintln!("soak: unknown argument `{bad}`");
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (lines, failures) = taps_service::run_soak(&cfg);
    for l in &lines {
        println!("xtask soak: {l}");
    }
    if failures.is_empty() {
        println!(
            "xtask soak: clean ({} seed(s): invariants, byte-identical double runs, \
             honest sheds, throughput floor {:.0}/s)",
            cfg.seeds.len(),
            cfg.min_throughput
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("soak FAILURE (seed {}): {}", f.seed, f.what);
        }
        eprintln!("xtask soak: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn lint(quiet: bool, json: bool) -> ExitCode {
    let root = workspace_root();
    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", xtask::findings_to_json(&findings));
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if findings.is_empty() {
        if !quiet {
            println!(
                "xtask lint: clean (token + AST engines, rules L1-L10, cross-check, \
                 allowlist hygiene)"
            );
        }
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}\n");
        }
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/..` (xtask lives one level
/// below the root), falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent().map(|p| p.to_path_buf()).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}
