//! `cargo xtask <task>` — workspace automation.
//!
//! Tasks:
//! * `lint` — run the repo-specific determinism & safety lints (L1–L4)
//!   over every workspace crate. Exits non-zero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--quiet" || a == "-q")),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--quiet]

tasks:
  lint    repo-specific determinism & safety lints (L1-L4); see DESIGN.md";

fn lint(quiet: bool) -> ExitCode {
    let root = workspace_root();
    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        if !quiet {
            println!("xtask lint: clean (rules L1-L4 + allowlist hygiene)");
        }
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}\n");
        }
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/..` (xtask lives one level
/// below the root), falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent().map(|p| p.to_path_buf()).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}
