//! `cargo xtask trace` — the golden-trace gate (DESIGN.md §11).
//!
//! Runs the canonical traced scenarios from `taps::trace_scenarios`
//! (8-host §VI testbed with a reliable control plane, and the chaos
//! scenario with lossy channels + a controller failover), then for each:
//!
//! 1. runs the scenario **twice** and asserts the two JSONL exports are
//!    byte-identical (the determinism contract behind the golden suite);
//! 2. replays the event stream through [`taps_obs::replay::validate`],
//!    which re-checks link exclusivity, slice-within-deadline, and
//!    grant/forwarding-entry agreement from the trace alone;
//! 3. writes the trace to `results/TRACE_<scenario>.jsonl`.

use std::path::Path;
use taps::trace_scenarios::{chaos_trace, testbed_trace};
use taps_obs::{jsonl, replay, TraceRecord};

/// One failed scenario check.
#[derive(Debug)]
pub struct TraceFailure {
    /// Scenario name.
    pub scenario: &'static str,
    /// What went wrong.
    pub what: String,
}

/// A passed scenario check, for reporting.
#[derive(Debug)]
pub struct TraceSummary {
    /// Scenario name.
    pub scenario: &'static str,
    /// Validator statistics.
    pub report: replay::ReplayReport,
    /// Where the trace artifact was written (workspace-relative).
    pub artifact: String,
}

fn check_scenario(
    root: &Path,
    name: &'static str,
    run: fn() -> Vec<TraceRecord>,
    summaries: &mut Vec<TraceSummary>,
    failures: &mut Vec<TraceFailure>,
) {
    let first = run();
    let text = jsonl::to_jsonl(&first);
    if jsonl::to_jsonl(&run()) != text {
        failures.push(TraceFailure {
            scenario: name,
            what: "two same-seed runs exported different JSONL".into(),
        });
        return;
    }
    let report = match replay::validate(&first) {
        Ok(r) => r,
        Err(e) => {
            failures.push(TraceFailure {
                scenario: name,
                what: format!("replay validation failed: {e}"),
            });
            return;
        }
    };
    let artifact = format!("results/TRACE_{name}.jsonl");
    if let Err(e) = jsonl::write_jsonl(&root.join(&artifact), &first) {
        failures.push(TraceFailure {
            scenario: name,
            what: format!("writing {artifact}: {e}"),
        });
        return;
    }
    summaries.push(TraceSummary {
        scenario: name,
        report,
        artifact,
    });
}

/// Runs the trace gate; returns per-scenario summaries and failures.
pub fn run(root: &Path) -> (Vec<TraceSummary>, Vec<TraceFailure>) {
    let mut summaries = Vec::new();
    let mut failures = Vec::new();
    check_scenario(
        root,
        "testbed",
        testbed_trace,
        &mut summaries,
        &mut failures,
    );
    check_scenario(root, "chaos", chaos_trace, &mut summaries, &mut failures);
    (summaries, failures)
}
