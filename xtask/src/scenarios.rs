//! `cargo xtask scenarios [--update]` — the golden scenario-matrix gate
//! (DESIGN.md §16).
//!
//! Every scenario family (weighted admission, close-to-deadline stress,
//! websearch/data-mining trace-shaped sizes, incast fan-in, stragglers,
//! diurnal ramp) is generated at two fixed seeds and driven through the
//! full seven-scheduler comparison (TAPS plus the six baselines) on the
//! 16-host single-rooted tree with the capacity validator armed. The
//! gate asserts, per matrix cell:
//!
//! * **double-run determinism** — re-running the cell produces a
//!   bit-identical outcome digest (statuses, finish times, delivered
//!   bytes, weighted aggregates);
//! * **digest pinning** — the digest matches the checked-in manifest
//!   `tests/goldens/scenario_matrix.json` (refresh intentional drift
//!   with `cargo xtask scenarios --update`);
//! * **weight-neutrality** — the weighted family re-run with every
//!   weight forced to 1.0 is bit-identical to the plain unweighted
//!   constructor's run under TAPS;
//! * **chaos survival** — the incast family also runs through the SDN
//!   chaos harness (lossy channel + controller crash/failover) with
//!   zero safety violations and a bit-identical double run.

use std::collections::BTreeMap;
use std::path::Path;

use taps::prelude::*;
use taps_flowsim::Scheduler;
use taps_sdn::{run_chaos, ChannelConfig, ChaosConfig, ControllerConfig};
use taps_topology::build::partial_fat_tree_testbed;
use taps_workload::ScenarioConfig;

/// One failed matrix check.
pub struct ScenarioFailure {
    /// `family/seed[/scheduler]` cell label.
    pub cell: String,
    pub what: String,
}

/// The matrix's two pinned seeds.
const SEEDS: [u64; 2] = [3, 11];

/// All scenario families at a fixed seed, sized for gate latency.
fn presets(seed: u64) -> Vec<(&'static str, ScenarioConfig)> {
    vec![
        ("weighted", ScenarioConfig::weighted(16, 24, seed)),
        (
            "close_to_deadline",
            ScenarioConfig::close_to_deadline(16, 20, seed),
        ),
        ("websearch", ScenarioConfig::websearch_sizes(16, 20, seed)),
        (
            "data_mining",
            ScenarioConfig::data_mining_sizes(16, 16, seed),
        ),
        ("incast", ScenarioConfig::incast(16, 20, seed)),
        ("straggler", ScenarioConfig::straggler(16, 16, seed)),
        ("diurnal_ramp", ScenarioConfig::diurnal_ramp(16, 24, seed)),
    ]
}

type SchedulerFactory = fn() -> Box<dyn Scheduler>;

/// TAPS plus the six baselines, in fixed comparison order.
fn schedulers() -> [(&'static str, SchedulerFactory); 7] {
    [
        ("taps", || Box::new(Taps::new())),
        ("fair", || Box::new(FairSharing::new())),
        ("d3", || Box::new(D3::new())),
        ("pdq", || Box::new(Pdq::new())),
        ("baraat", || Box::new(Baraat::new())),
        ("varys", || Box::new(Varys::new())),
        ("d2tcp", || Box::new(D2tcp::new())),
    ]
}

/// FNV-1a over a word stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Runs one scheduler over one workload and digests the full outcome:
/// per-flow terminal status, finish time, delivered bytes, plus the
/// task-success vector and the weighted aggregates.
fn outcome_digest(topo: &Topology, wl: &Workload, mk: SchedulerFactory) -> u64 {
    let mut s = mk();
    let rep = Simulation::new(topo, wl, SimConfig::default()).run(s.as_mut());
    let mut h = Fnv::new();
    h.mix(rep.tasks_completed as u64);
    h.mix(rep.flows_on_time as u64);
    h.mix(rep.bytes_on_time_tasks.to_bits());
    h.mix(rep.bytes_wasted_flow.to_bits());
    h.mix(rep.wbytes_total.to_bits());
    h.mix(rep.wbytes_on_time_tasks.to_bits());
    for ok in &rep.task_success {
        h.mix(u64::from(*ok));
    }
    for f in &rep.flow_outcomes {
        h.mix(f.status as u64);
        h.mix(f.finish.unwrap_or(-1.0).to_bits());
        h.mix(f.delivered.to_bits());
        h.mix(u64::from(f.on_time));
    }
    h.0
}

/// The weighted family with every weight forced to 1.0 must be
/// bit-identical to the plain unweighted constructor's run.
fn weight_neutrality_check(topo: &Topology, wl: &Workload, failures: &mut Vec<ScenarioFailure>) {
    let plain: Vec<_> = wl
        .tasks
        .iter()
        .map(|t| {
            let flows: Vec<_> = t
                .flows
                .clone()
                .map(|fid| {
                    let f = &wl.flows[fid];
                    (f.src, f.dst, f.size)
                })
                .collect();
            (t.arrival, t.deadline, flows)
        })
        .collect();
    let weighted: Vec<_> = plain
        .iter()
        .cloned()
        .map(|(a, d, f)| (a, d, f, 1.0))
        .collect();
    let a = outcome_digest(topo, &Workload::from_tasks(plain), || Box::new(Taps::new()));
    let b = outcome_digest(topo, &Workload::from_weighted_tasks(weighted), || {
        Box::new(Taps::new())
    });
    if a != b {
        failures.push(ScenarioFailure {
            cell: "weighted/unit".into(),
            what: format!(
                "weight 1.0 is not a no-op: unweighted digest {a:#018x} vs weighted {b:#018x}"
            ),
        });
    }
}

/// Runs the incast family through the SDN chaos harness: lossy control
/// channel, controller crash + failover, zero violations, bit-identical
/// double run.
fn chaos_check(seed: u64, failures: &mut Vec<ScenarioFailure>) -> String {
    let cell = format!("incast/{seed}/chaos");
    let topo = partial_fat_tree_testbed(GBPS);
    let wl = match ScenarioConfig::incast(8, 12, seed).generate() {
        Ok(wl) => wl,
        Err(e) => {
            failures.push(ScenarioFailure {
                cell: cell.clone(),
                what: format!("incast chaos workload failed to generate: {e}"),
            });
            return format!("{cell}: generation failed");
        }
    };
    let horizon = match wl.tasks.last() {
        Some(t) => t.deadline + 0.08,
        None => {
            failures.push(ScenarioFailure {
                cell: cell.clone(),
                what: "empty incast workload".into(),
            });
            return format!("{cell}: empty workload");
        }
    };
    let mut cfg = ChaosConfig::unreliable(
        ControllerConfig::default(),
        ChannelConfig::lossy(0.2, 0.0002),
        seed,
        horizon,
    );
    cfg.faults = taps_workload::FaultPlan::controller_outage(0.005, 0.010).events;
    let a = run_chaos(&topo, &wl, &cfg);
    let b = run_chaos(&topo, &wl, &cfg);
    if a.violations() != 0 {
        failures.push(ScenarioFailure {
            cell: cell.clone(),
            what: format!("{} safety violation(s) under chaos", a.violations()),
        });
    }
    if a.digest != b.digest {
        failures.push(ScenarioFailure {
            cell: cell.clone(),
            what: format!(
                "chaos double run diverged (digest {:#018x} vs {:#018x})",
                a.digest, b.digest
            ),
        });
    }
    if a.failovers.len() != 1 {
        failures.push(ScenarioFailure {
            cell: cell.clone(),
            what: format!(
                "expected 1 controller recovery, observed {}",
                a.failovers.len()
            ),
        });
    }
    format!(
        "{cell}: {} flows ({} on time), 1 crash, digest {:#018x}",
        a.flows_total, a.flows_on_time, a.digest
    )
}

/// Prints the EXPERIMENTS.md markdown table: per family (seed 3), each
/// scheduler's task miss ratio and weighted goodput.
pub fn print_table() {
    let topo = single_rooted(2, 2, 4, GBPS);
    let mut header = String::from("| scenario |");
    let mut rule = String::from("|---|");
    for (name, _) in schedulers() {
        header.push_str(&format!(" {name} |"));
        rule.push_str("---|");
    }
    println!("{header}\n{rule}");
    for (family, cfg) in presets(SEEDS[0]) {
        let wl = match cfg.generate() {
            Ok(wl) => wl,
            Err(e) => {
                eprintln!("{family}: generation failed: {e}");
                continue;
            }
        };
        let mut row = format!("| {family} |");
        for (_, mk) in schedulers() {
            let mut s = mk();
            let rep = Simulation::new(&topo, &wl, SimConfig::default()).run(s.as_mut());
            row.push_str(&format!(
                " {:.2} / {:.2} |",
                rep.weighted_miss_ratio(),
                rep.weighted_goodput()
            ));
        }
        println!("{row}");
    }
}

fn manifest_path(root: &Path) -> std::path::PathBuf {
    root.join("tests/goldens/scenario_matrix.json")
}

fn read_manifest(root: &Path) -> Option<BTreeMap<String, String>> {
    let text = std::fs::read_to_string(manifest_path(root)).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    let serde_json::Value::Object(members) = v else {
        return None;
    };
    let mut m = BTreeMap::new();
    for (k, val) in members {
        m.insert(k, val.as_str()?.to_string());
    }
    Some(m)
}

fn write_manifest(root: &Path, digests: &BTreeMap<String, String>) -> std::io::Result<()> {
    let obj = serde_json::Value::Object(
        digests
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::Value::Str(v.clone())))
            .collect(),
    );
    let path = manifest_path(root);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut text = serde_json::to_string_pretty(&obj).map_err(std::io::Error::other)?;
    text.push('\n');
    std::fs::write(path, text)
}

/// Entry point for `cargo xtask scenarios [--update]`. Returns progress
/// lines and failures (empty failures = gate passes).
pub fn run(root: &Path, update: bool) -> (Vec<String>, Vec<ScenarioFailure>) {
    let topo = single_rooted(2, 2, 4, GBPS);
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let mut digests: BTreeMap<String, String> = BTreeMap::new();

    for seed in SEEDS {
        for (family, cfg) in presets(seed) {
            let wl = match cfg.generate() {
                Ok(wl) => wl,
                Err(e) => {
                    failures.push(ScenarioFailure {
                        cell: format!("{family}/{seed}"),
                        what: format!("generation failed: {e}"),
                    });
                    continue;
                }
            };
            if let Err(e) = wl.validate() {
                failures.push(ScenarioFailure {
                    cell: format!("{family}/{seed}"),
                    what: format!("generated workload invalid: {e}"),
                });
                continue;
            }
            let mut cell_digest = Fnv::new();
            for (sched, mk) in schedulers() {
                let a = outcome_digest(&topo, &wl, mk);
                let b = outcome_digest(&topo, &wl, mk);
                if a != b {
                    failures.push(ScenarioFailure {
                        cell: format!("{family}/{seed}/{sched}"),
                        what: format!("double run diverged (digest {a:#018x} vs {b:#018x})"),
                    });
                }
                digests.insert(format!("{family}/{seed}/{sched}"), format!("{a:#018x}"));
                cell_digest.mix(a);
            }
            lines.push(format!(
                "{family}/{seed}: {} tasks, {} flows, cell digest {:#018x}",
                wl.num_tasks(),
                wl.num_flows(),
                cell_digest.0
            ));
            if family == "weighted" {
                weight_neutrality_check(&topo, &wl, &mut failures);
            }
        }
        lines.push(chaos_check(seed, &mut failures));
    }

    if update {
        match write_manifest(root, &digests) {
            Ok(()) => lines.push(format!(
                "wrote {} digest(s) to {}",
                digests.len(),
                manifest_path(root).display()
            )),
            Err(e) => failures.push(ScenarioFailure {
                cell: "manifest".into(),
                what: format!("failed to write manifest: {e}"),
            }),
        }
        return (lines, failures);
    }

    match read_manifest(root) {
        None => failures.push(ScenarioFailure {
            cell: "manifest".into(),
            what: format!(
                "missing or unreadable manifest {}; run `cargo xtask scenarios --update`",
                manifest_path(root).display()
            ),
        }),
        Some(pinned) => {
            for (cell, digest) in &digests {
                match pinned.get(cell) {
                    None => failures.push(ScenarioFailure {
                        cell: cell.clone(),
                        what: "cell missing from the pinned manifest; --update to refresh".into(),
                    }),
                    Some(p) if p != digest => failures.push(ScenarioFailure {
                        cell: cell.clone(),
                        what: format!(
                            "digest drifted: got {digest}, pinned {p}; \
                             --update if the change is intentional"
                        ),
                    }),
                    Some(_) => {}
                }
            }
            for cell in pinned.keys() {
                if !digests.contains_key(cell) {
                    failures.push(ScenarioFailure {
                        cell: cell.clone(),
                        what: "pinned cell no longer produced by the matrix".into(),
                    });
                }
            }
        }
    }
    (lines, failures)
}
