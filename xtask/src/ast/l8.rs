//! L8 — float-ordering hygiene in decision-path crates.
//!
//! Bare `==`/`!=` between `f64` completion/priority values makes
//! tie-breaks depend on rounding noise, and `partial_cmp`-based sorts
//! panic or mis-sort on NaN. In the decision-path crates every float
//! ordering must go through `f64::total_cmp` or the EPS comparison
//! helpers. Operand `f64` evidence:
//!
//! - a float literal or an `as f64`/`as f32` cast in the operand chain;
//! - a chain whose *final value* is `f64`: a local/param declared `f64`
//!   (`let x: f64`, `x: f64` closure params, `let x = 0.5`), a trailing
//!   field access whose field is declared `f64` anywhere in the
//!   workspace, a trailing call to a function returning `f64`, or an
//!   `f64` const. Evidence is deliberately *last-element*: `x.to_bits()
//!   == y.to_bits()` compares `u64` bit patterns (the correct exact
//!   float equality) even though `x` is an `f64` field.
//!
//! Equality (`==`/`!=`) is flagged on one-sided evidence — exact float
//! equality is suspect even against a literal. Relational comparisons
//! (`<`/`<=`/`>`/`>=`) are flagged only when *both* operands are
//! computed `f64` values: `a.completion < b.completion` is an ordering
//! decision that rounding noise can flip, while `rate > 0.0` against a
//! constant threshold is an explicit tolerance the author chose.
//!
//! Operand chains mentioning an `eps`/`EPS` identifier are exempt (they
//! *are* the tolerance helpers); anything else legitimately bare takes
//! a `// lint: l8-ok(reason)` marker. `partial_cmp` is banned outright.

use super::model::{FnInfo, Workspace};
use crate::rules::Finding;
use crate::scan::MarkerKind;
use std::collections::{BTreeMap, BTreeSet};
use syn::{Delimiter, TokenTree};

/// Crates whose decision paths the rule covers.
const SCOPE_CRATES: &[&str] = &["taps_core", "taps_sdn", "taps_flowsim", "taps_baselines"];

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.fns {
        if f.is_test || !SCOPE_CRATES.contains(&f.crate_ident.as_str()) {
            continue;
        }
        let Some(entry) = ws.files.get(&f.rel) else {
            continue;
        };
        let mut locals: BTreeSet<String> = f.f64_params.iter().cloned().collect();
        collect_locals(&f.body, &mut locals);

        let mut hits: BTreeMap<usize, String> = BTreeMap::new();
        scan_slice(ws, f, &locals, &f.body, &mut hits);
        find_partial_cmp(&f.body, &mut hits);

        for (line, message) in hits {
            if entry.source.line_is_test(line) {
                continue;
            }
            if entry.source.marker_for(MarkerKind::L8Ok, line).is_some() {
                continue;
            }
            out.push(Finding {
                rule: "L8",
                path: f.rel.clone(),
                line,
                snippet: entry
                    .source
                    .raw_lines
                    .get(line - 1)
                    .cloned()
                    .unwrap_or_default(),
                message,
            });
        }
    }
}

/// Adds `name` for every `name: f64` annotation and `let name = <float>`
/// binding in the stream (closure params and nested blocks included).
fn collect_locals(tokens: &[TokenTree], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Group(g) = t {
            collect_locals(&g.stream, out);
            continue;
        }
        let TokenTree::Ident(id) = t else { continue };
        if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == ':' && !p.joint)
            && matches!(tokens.get(i + 2), Some(t) if t.is_ident("f64"))
        {
            out.insert(id.text.clone());
        }
        if id.text == "let" {
            let mut j = i + 1;
            if matches!(tokens.get(j), Some(t) if t.is_ident("mut")) {
                j += 1;
            }
            let (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(eq))) =
                (tokens.get(j), tokens.get(j + 1))
            else {
                continue;
            };
            if eq.ch == '='
                && !eq.joint
                && matches!(tokens.get(j + 2), Some(TokenTree::Literal(l)) if l.is_float)
            {
                out.insert(name.text.clone());
            }
        }
    }
}

/// Comparison operator found at a token position.
struct Op {
    text: &'static str,
    line: u32,
    /// Index of the first token after the operator.
    rhs: usize,
}

fn op_at(tokens: &[TokenTree], i: usize) -> Option<Op> {
    let TokenTree::Punct(p) = &tokens[i] else {
        return None;
    };
    let line = p.span.line;
    let prev = i.checked_sub(1).and_then(|j| match &tokens[j] {
        TokenTree::Punct(q) if q.joint => Some(q.ch),
        _ => None,
    });
    // Skip the second char of a two-char operator (`<=`, `->`, `::`…).
    if prev.is_some() {
        return None;
    }
    let next = match tokens.get(i + 1) {
        Some(TokenTree::Punct(q)) => Some(q.ch),
        _ => None,
    };
    match (p.ch, p.joint, next) {
        ('=', true, Some('=')) => Some(Op {
            text: "==",
            line,
            rhs: i + 2,
        }),
        ('!', true, Some('=')) => Some(Op {
            text: "!=",
            line,
            rhs: i + 2,
        }),
        ('<', true, Some('=')) => Some(Op {
            text: "<=",
            line,
            rhs: i + 2,
        }),
        ('>', true, Some('=')) => Some(Op {
            text: ">=",
            line,
            rhs: i + 2,
        }),
        // Single `<`/`>`: exclude shifts and generics-ish neighbors; the
        // operand-evidence requirement filters the rest (a bare `f64`
        // type ident is never evidence).
        ('<', false, _) => Some(Op {
            text: "<",
            line,
            rhs: i + 1,
        }),
        ('>', false, _) => Some(Op {
            text: ">",
            line,
            rhs: i + 1,
        }),
        _ => None,
    }
}

fn scan_slice(
    ws: &Workspace,
    f: &FnInfo,
    locals: &BTreeSet<String>,
    tokens: &[TokenTree],
    hits: &mut BTreeMap<usize, String>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Group(g) = t {
            scan_slice(ws, f, locals, &g.stream, hits);
        }
        let Some(op) = op_at(tokens, i) else { continue };
        let left = left_chain(tokens, i);
        let right = right_chain(tokens, op.rhs);
        if left.is_empty() || right.is_empty() {
            continue;
        }
        if mentions_eps(&left) || mentions_eps(&right) {
            continue;
        }
        let l_ev = has_f64_evidence(ws, locals, &left);
        let r_ev = has_f64_evidence(ws, locals, &right);
        let equality = matches!(op.text, "==" | "!=");
        // Relational: both sides must be *computed* floats, and a float
        // literal anywhere in either chain is an explicit threshold or
        // tolerance (`rate > 0.0`, `x <= deadline + 1e-9`) — the author
        // already chose how much rounding noise to absorb. Equality has
        // no such out: exact float `==` is suspect even against 0.0.
        let flagged = if equality {
            l_ev || r_ev
        } else {
            l_ev && r_ev && !has_float_literal(&left) && !has_float_literal(&right)
        };
        if !flagged {
            continue;
        }
        hits.entry(op.line as usize).or_insert(format!(
            "bare `{}` on f64 values in `{}`: float orderings in decision-path \
             code go through `f64::total_cmp` or the EPS helpers so NaN and \
             rounding noise cannot flip a scheduling decision, or allowlist \
             with `// lint: l8-ok(reason)`",
            op.text,
            f.qualified(),
        ));
    }
}

fn find_partial_cmp(tokens: &[TokenTree], hits: &mut BTreeMap<usize, String>) {
    for (i, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Group(g) => find_partial_cmp(&g.stream, hits),
            // `fn partial_cmp` is a manual PartialOrd impl (the fix for
            // this rule), not a use of the NaN-unsound comparison.
            TokenTree::Ident(id)
                if id.text == "partial_cmp"
                    && !matches!(i.checked_sub(1).map(|j| &tokens[j]), Some(t) if t.is_ident("fn")) =>
            {
                hits.entry(id.span.line as usize).or_insert(
                    "`partial_cmp` on floats is Option-ordered and NaN-unsound in a \
                     sort: use `f64::total_cmp`, or allowlist with \
                     `// lint: l8-ok(reason)`"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Statement-level keywords that terminate an operand chain — without
/// this, a chain walks through a brace block into the *neighboring*
/// statement's tokens.
fn chain_boundary(t: &TokenTree) -> bool {
    match t {
        TokenTree::Group(g) => g.delimiter == Delimiter::Brace,
        TokenTree::Ident(id) => matches!(
            id.text.as_str(),
            "if" | "else"
                | "return"
                | "let"
                | "while"
                | "for"
                | "match"
                | "in"
                | "break"
                | "continue"
                | "move"
        ),
        _ => false,
    }
}

/// Operand tokens to the left of the operator at `op`, in source order.
/// Chains cross `+ - * /` so `x <= deadline + EPS` sees the eps ident.
fn left_chain(tokens: &[TokenTree], op: usize) -> Vec<&TokenTree> {
    let mut chain = Vec::new();
    let mut j = op;
    while j > 0 {
        j -= 1;
        if chain_boundary(&tokens[j]) {
            break;
        }
        match &tokens[j] {
            TokenTree::Ident(_) | TokenTree::Literal(_) | TokenTree::Group(_) => {
                chain.push(&tokens[j]);
            }
            TokenTree::Punct(p) if matches!(p.ch, '.' | ':' | '?' | '+' | '-' | '*' | '/') => {
                chain.push(&tokens[j]);
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Operand tokens to the right of the operator, in source order.
fn right_chain(tokens: &[TokenTree], start: usize) -> Vec<&TokenTree> {
    let mut chain = Vec::new();
    let mut j = start;
    // Unary prefixes.
    while matches!(tokens.get(j), Some(TokenTree::Punct(p)) if matches!(p.ch, '-' | '&' | '*' | '!'))
    {
        j += 1;
    }
    while j < tokens.len() {
        if chain_boundary(&tokens[j]) {
            break;
        }
        match &tokens[j] {
            TokenTree::Ident(_) | TokenTree::Literal(_) | TokenTree::Group(_) => {
                chain.push(&tokens[j]);
            }
            TokenTree::Punct(p) if matches!(p.ch, '.' | ':' | '?' | '+' | '-' | '*' | '/') => {
                chain.push(&tokens[j]);
            }
            _ => break,
        }
        j += 1;
    }
    chain
}

/// A float literal anywhere at the chain's top level.
fn has_float_literal(chain: &[&TokenTree]) -> bool {
    chain
        .iter()
        .any(|t| matches!(t, TokenTree::Literal(l) if l.is_float))
}

/// EPS/tolerance identifiers exempt the comparison.
fn mentions_eps(chain: &[&TokenTree]) -> bool {
    chain
        .iter()
        .any(|t| matches!(t, TokenTree::Ident(i) if i.text.to_ascii_lowercase().contains("eps")))
}

fn has_f64_evidence(ws: &Workspace, locals: &BTreeSet<String>, chain: &[&TokenTree]) -> bool {
    // A float literal or `as f64` cast anywhere in the chain is evidence.
    for (k, t) in chain.iter().enumerate() {
        match t {
            TokenTree::Literal(l) if l.is_float => return true,
            TokenTree::Ident(id) if id.text == "as" => {
                if matches!(chain.get(k + 1), Some(t) if t.is_ident("f64") || t.is_ident("f32")) {
                    return true;
                }
            }
            _ => {}
        }
    }
    // Ident-based evidence is last-element only: the final link of the
    // chain decides the compared value's type (`x.to_bits()` is `u64`
    // no matter what `x` is).
    let mut k = chain.len();
    while k > 0 && matches!(chain[k - 1], TokenTree::Punct(p) if p.ch == '?') {
        k -= 1;
    }
    if k == 0 {
        return false;
    }
    match chain[k - 1] {
        // Trailing call: evidence iff the callee returns f64.
        TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {
            matches!(
                k.checked_sub(2).map(|j| chain[j]),
                Some(TokenTree::Ident(id)) if ws.f64_fns.contains(&id.text)
            )
        }
        TokenTree::Ident(id) => {
            if id.text == "f64" || id.text == "f32" {
                return false; // a type position, not a value
            }
            match k.checked_sub(2).map(|j| chain[j]) {
                // Trailing field access.
                Some(TokenTree::Punct(p)) if p.ch == '.' => ws.f64_fields.contains(&id.text),
                // Path tail (`mod::CONST`).
                Some(TokenTree::Punct(p)) if p.ch == ':' => ws.f64_consts.contains(&id.text),
                // Bare name: local, param, or const in scope.
                _ => locals.contains(&id.text) || ws.f64_consts.contains(&id.text),
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l8(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/lib.rs", src)]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn flags_bare_float_comparisons() {
        let src = "pub struct J { pub completion: f64 }\npub fn pick(a: &J, b: &J) -> bool {\n    a.completion < b.completion\n}\npub fn same(x: f64) -> bool {\n    x == 0.0\n}\n";
        let out = l8(src);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 6], "{out:?}");
    }

    #[test]
    fn total_cmp_eps_and_ints_pass() {
        let src = "pub const EPS: f64 = 1e-9;\npub struct J { pub completion: f64, pub n: u64 }\npub fn ok(a: &J, b: &J) -> bool {\n    (a.completion - b.completion).abs() < EPS\n}\npub fn cmp(a: &J, b: &J) -> std::cmp::Ordering {\n    a.completion.total_cmp(&b.completion)\n}\npub fn ints(a: &J, b: &J) -> bool {\n    a.n < b.n\n}\npub fn generic(v: Vec<f64>) -> usize {\n    v.len()\n}\n";
        assert!(l8(src).is_empty(), "{:?}", l8(src));
    }

    #[test]
    fn thresholds_and_bit_compares_pass_but_computed_pairs_do_not() {
        // Literal thresholds are an explicit tolerance: relational ops
        // against them are fine; `to_bits` equality is exact by design.
        let src = "pub struct J { pub completion: f64 }\npub fn guard(a: &J) -> bool {\n    a.completion > 0.0\n}\npub fn exact(a: &J, b: &J) -> bool {\n    a.completion.to_bits() == b.completion.to_bits()\n}\npub fn order(a: &J, b: &J) -> bool {\n    a.completion <= b.completion\n}\n";
        let out = l8(src);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![9], "{out:?}");
    }

    #[test]
    fn partial_cmp_is_banned_and_marker_suppresses() {
        let src =
            "pub fn sortit(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let out = l8(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("total_cmp"));

        let src = "pub fn exact(x: f64) -> bool {\n    // lint: l8-ok(exact sentinel compare: value is copied, never computed)\n    x == 0.0\n}\n";
        assert!(l8(src).is_empty(), "{:?}", l8(src));
    }
}
