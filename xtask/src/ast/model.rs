//! Workspace item model for the AST analysis engine.
//!
//! [`Workspace::load`] walks every crate root (`src/lib.rs` plus each
//! `crates/*/src/lib.rs`), follows `mod x;` declarations through the
//! file tree, and flattens what it finds into:
//!
//! - a per-file [`FileEntry`] holding the whole-file token stream, the
//!   flattened `use` bindings (with their alias maps), and a shared
//!   [`SourceModel`] so allowlist-marker bookkeeping is common between
//!   the token scanner and the AST engine;
//! - a workspace-wide function table ([`FnInfo`]) with crate, module
//!   path, impl type, visibility, test status, signature, and body
//!   tokens — the substrate for the call graph (L7) and the float
//!   comparison rule (L8);
//! - `f64` evidence indexes: struct fields, function returns, and
//!   consts typed `f64`, used by L8 to type operands without full
//!   inference.
//!
//! `#[cfg(test)]`/`#[test]` items are loaded but flagged, so rules can
//! skip them with the same semantics as the token scanner's
//! brace-matched test regions. [`Workspace::from_sources`] builds the
//! same model from in-memory fixtures for the engine's own tests.

use crate::scan::SourceModel;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use syn::{Item, ItemFn, TokenTree, UseBinding, Visibility};

/// One loaded source file.
pub struct FileEntry {
    /// Workspace-relative path.
    pub rel: String,
    /// Owning crate as an identifier (`taps`, `taps_core`, …).
    pub crate_ident: String,
    /// Shared parse shared with the token scanner (markers, test map).
    pub source: SourceModel,
    /// Whole-file token stream (macro bodies and struct fields included).
    pub tokens: Vec<TokenTree>,
    /// Flattened `use` bindings declared anywhere in the file, with
    /// whether the declaration sits in test-only code.
    pub uses: Vec<UseInfo>,
}

/// A `use` binding plus its test context.
pub struct UseInfo {
    pub binding: UseBinding,
    pub in_test: bool,
}

impl FileEntry {
    /// alias → full target path, for non-test renamed imports. The map
    /// is file-scoped: inline modules share their file's aliases, an
    /// over-approximation that errs toward reporting.
    pub fn rename_map(&self) -> BTreeMap<&str, &[String]> {
        let mut map = BTreeMap::new();
        for u in &self.uses {
            if !u.in_test && u.binding.is_rename() {
                map.insert(u.binding.alias.as_str(), u.binding.path.as_slice());
            }
        }
        map
    }
}

/// One function (free, inherent/trait method, or trait default).
pub struct FnInfo {
    pub crate_ident: String,
    pub rel: String,
    /// Module path inside the crate (file mods and inline mods).
    pub module: Vec<String>,
    pub name: String,
    /// Implementing type for methods, trait name for trait defaults.
    pub impl_ty: Option<String>,
    /// `pub` without restriction.
    pub is_pub: bool,
    /// `#[test]`, `#[cfg(test)]`, or nested inside either.
    pub is_test: bool,
    /// Flattened return type text.
    pub ret: Option<String>,
    /// Names of parameters whose declared type is `f64`.
    pub f64_params: Vec<String>,
    /// Body token stream (empty for bodiless trait declarations).
    pub body: Vec<TokenTree>,
    pub line: u32,
}

impl FnInfo {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed workspace.
pub struct Workspace {
    /// rel path → file entry, for every file reachable from a crate root.
    pub files: BTreeMap<String, FileEntry>,
    pub fns: Vec<FnInfo>,
    /// Struct field names declared `f64` anywhere in the workspace.
    pub f64_fields: BTreeSet<String>,
    /// Function names returning `f64`.
    pub f64_fns: BTreeSet<String>,
    /// Const/static names typed `f64`.
    pub f64_consts: BTreeSet<String>,
    /// (rel, message) for files that failed to tokenize or resolve.
    pub errors: Vec<(String, String)>,
}

/// Maps a crate-root rel path to the crate identifier.
fn crate_ident_for_root(rel: &str) -> Option<String> {
    if rel == "src/lib.rs" {
        return Some("taps".to_string());
    }
    let rest = rel.strip_prefix("crates/")?;
    let dir = rest.strip_suffix("/src/lib.rs")?;
    if dir.contains('/') {
        return None;
    }
    Some(format!("taps_{}", dir.replace('-', "_")))
}

impl Workspace {
    /// Loads the workspace from disk, starting at each crate root.
    pub fn load(root: &Path) -> Workspace {
        let mut roots = Vec::new();
        if root.join("src/lib.rs").is_file() {
            roots.push("src/lib.rs".to_string());
        }
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            for entry in entries.flatten() {
                let lib = entry.path().join("src/lib.rs");
                if lib.is_file() {
                    roots.push(format!(
                        "crates/{}/src/lib.rs",
                        entry.file_name().to_string_lossy()
                    ));
                }
            }
        }
        roots.sort();
        let provider = |rel: &str| std::fs::read_to_string(root.join(rel)).ok();
        Self::build(&roots, &provider)
    }

    /// Builds the model from in-memory `(rel, source)` fixtures; crate
    /// roots are the `src/lib.rs` entries among the keys.
    pub fn from_sources(files: &[(&str, &str)]) -> Workspace {
        let map: BTreeMap<&str, &str> = files.iter().copied().collect();
        let mut roots: Vec<String> = map
            .keys()
            .filter(|k| crate_ident_for_root(k).is_some())
            .map(|k| k.to_string())
            .collect();
        roots.sort();
        let provider = move |rel: &str| map.get(rel).map(|s| s.to_string());
        Self::build(&roots, &provider)
    }

    fn build(roots: &[String], provider: &dyn Fn(&str) -> Option<String>) -> Workspace {
        let mut ws = Workspace {
            files: BTreeMap::new(),
            fns: Vec::new(),
            f64_fields: BTreeSet::new(),
            f64_fns: BTreeSet::new(),
            f64_consts: BTreeSet::new(),
            errors: Vec::new(),
        };
        for rel in roots {
            let Some(crate_ident) = crate_ident_for_root(rel) else {
                continue;
            };
            load_file(&mut ws, rel, &crate_ident, &[], provider);
        }
        ws
    }

    /// Function ids in `name`'s crate-wide method index.
    pub fn fns_named(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        let name = name.to_string();
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name)
            .map(|(i, _)| i)
    }
}

fn load_file(
    ws: &mut Workspace,
    rel: &str,
    crate_ident: &str,
    module: &[String],
    provider: &dyn Fn(&str) -> Option<String>,
) {
    if ws.files.contains_key(rel) {
        return;
    }
    let Some(text) = provider(rel) else {
        ws.errors
            .push((rel.to_string(), "module file not found".to_string()));
        return;
    };
    let source = SourceModel::parse(Path::new(rel), &text);
    let tokens = match syn::lexer::tokenize(&text) {
        Ok(t) => t,
        Err(e) => {
            ws.errors.push((rel.to_string(), e.to_string()));
            ws.files.insert(
                rel.to_string(),
                FileEntry {
                    rel: rel.to_string(),
                    crate_ident: crate_ident.to_string(),
                    source,
                    tokens: Vec::new(),
                    uses: Vec::new(),
                },
            );
            return;
        }
    };
    let items = syn::parse_items(&tokens);
    ws.files.insert(
        rel.to_string(),
        FileEntry {
            rel: rel.to_string(),
            crate_ident: crate_ident.to_string(),
            source,
            tokens,
            uses: Vec::new(),
        },
    );
    let mut ctx = WalkCtx {
        rel,
        crate_ident,
        module: module.to_vec(),
        in_test: false,
        impl_ty: None,
        provider,
    };
    walk_items(ws, &items, &mut ctx);
}

struct WalkCtx<'a> {
    rel: &'a str,
    crate_ident: &'a str,
    module: Vec<String>,
    in_test: bool,
    impl_ty: Option<String>,
    provider: &'a dyn Fn(&str) -> Option<String>,
}

/// Directory that child `mod x;` files of `rel` live in.
fn child_dir(rel: &str) -> String {
    let dir = rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
    let file = rel.rsplit_once('/').map(|(_, f)| f).unwrap_or(rel);
    if file == "lib.rs" || file == "mod.rs" || file == "main.rs" {
        dir.to_string()
    } else {
        format!("{dir}/{}", file.trim_end_matches(".rs"))
    }
}

fn walk_items(ws: &mut Workspace, items: &[Item], ctx: &mut WalkCtx<'_>) {
    for item in items {
        match item {
            Item::Fn(f) => record_fn(ws, f, ctx),
            Item::Mod(m) => {
                let test = ctx.in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                match &m.content {
                    Some(inner) => {
                        let saved_test = ctx.in_test;
                        ctx.in_test = test;
                        ctx.module.push(m.ident.clone());
                        walk_items(ws, inner, ctx);
                        ctx.module.pop();
                        ctx.in_test = saved_test;
                    }
                    None => {
                        // Out-of-line module: resolve `x.rs` / `x/mod.rs`
                        // next to this file. Test-only file modules are
                        // out of analysis scope entirely.
                        if test {
                            continue;
                        }
                        let dir = child_dir(ctx.rel);
                        let flat = format!("{dir}/{}.rs", m.ident);
                        let nested = format!("{dir}/{}/mod.rs", m.ident);
                        let child = if (ctx.provider)(&flat).is_some() {
                            flat
                        } else {
                            nested
                        };
                        let mut module = ctx.module.clone();
                        module.push(m.ident.clone());
                        load_file(ws, &child, ctx.crate_ident, &module, ctx.provider);
                    }
                }
            }
            Item::Use(u) => {
                let in_test = ctx.in_test;
                if let Some(entry) = ws.files.get_mut(ctx.rel) {
                    entry.uses.extend(u.bindings.iter().map(|b| UseInfo {
                        binding: b.clone(),
                        in_test,
                    }));
                }
            }
            Item::Impl(im) => {
                let saved = ctx.impl_ty.take();
                ctx.impl_ty = Some(im.self_ty.clone());
                walk_items(ws, &im.items, ctx);
                ctx.impl_ty = saved;
            }
            Item::Trait(tr) => {
                let saved = ctx.impl_ty.take();
                ctx.impl_ty = Some(tr.ident.clone());
                walk_items(ws, &tr.items, ctx);
                ctx.impl_ty = saved;
            }
            Item::Struct(s) => {
                if !ctx.in_test {
                    for field in &s.fields {
                        if field.ty == "f64" {
                            ws.f64_fields.insert(field.name.clone());
                        }
                    }
                }
            }
            Item::Const(c) => {
                if !ctx.in_test && c.ty == "f64" {
                    ws.f64_consts.insert(c.ident.clone());
                }
            }
            Item::Enum(_) | Item::Macro(_) | Item::Verbatim(_) => {}
        }
    }
}

fn record_fn(ws: &mut Workspace, f: &ItemFn, ctx: &mut WalkCtx<'_>) {
    let is_test = ctx.in_test || f.attrs.iter().any(|a| a.is_test() || a.is_cfg_test());
    if !is_test && f.sig.output.as_deref() == Some("f64") {
        ws.f64_fns.insert(f.sig.ident.text.clone());
    }
    let f64_params = f
        .sig
        .inputs
        .iter()
        .filter(|a| {
            let ty = a.ty.trim_start_matches('&').trim_start_matches("mut");
            ty.trim() == "f64"
        })
        .filter_map(|a| a.name.clone())
        .collect();
    ws.fns.push(FnInfo {
        crate_ident: ctx.crate_ident.to_string(),
        rel: ctx.rel.to_string(),
        module: ctx.module.clone(),
        name: f.sig.ident.text.clone(),
        impl_ty: ctx.impl_ty.clone(),
        is_pub: f.vis == Visibility::Public,
        is_test,
        ret: f.sig.output.clone(),
        f64_params,
        body: f.block.clone(),
        line: f.line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_mod_tree_and_indexes() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/lib.rs",
                "pub mod alloc;\npub const EPS: f64 = 1e-9;\npub struct S { pub completion: f64, pub n: u64 }\n",
            ),
            (
                "crates/core/src/alloc.rs",
                "impl S {\n    pub fn best(&self) -> f64 { 0.0 }\n    fn inner(&self) {}\n}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
            ),
        ]);
        assert!(ws.errors.is_empty(), "{:?}", ws.errors);
        assert_eq!(ws.files.len(), 2);
        assert!(ws.f64_consts.contains("EPS"));
        assert!(ws.f64_fields.contains("completion"));
        assert!(!ws.f64_fields.contains("n"));
        assert!(ws.f64_fns.contains("best"));

        let best = &ws.fns[ws.fns_named("best").next().unwrap()];
        assert_eq!(best.crate_ident, "taps_core");
        assert_eq!(best.impl_ty.as_deref(), Some("S"));
        assert!(best.is_pub && !best.is_test);
        let t = &ws.fns[ws.fns_named("t").next().unwrap()];
        assert!(t.is_test);
        assert_eq!(t.module, vec!["alloc".to_string(), "tests".to_string()]);
    }

    #[test]
    fn rename_map_skips_test_uses() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/lib.rs",
            "use std::time::Instant as T;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap as M;\n}\n",
        )]);
        let entry = &ws.files["crates/core/src/lib.rs"];
        let map = entry.rename_map();
        assert_eq!(
            map.get("T").copied(),
            Some(["std", "time", "Instant"].map(String::from).as_slice())
        );
        assert!(!map.contains_key("M"), "test-only rename must not leak");
    }

    #[test]
    fn missing_module_file_is_an_error() {
        let ws = Workspace::from_sources(&[("crates/core/src/lib.rs", "mod ghost;\n")]);
        assert_eq!(ws.errors.len(), 1);
        assert!(ws.errors[0].0.contains("ghost"));
    }
}
