//! AST-aware analysis engine (DESIGN.md §13).
//!
//! Built on the `compat/syn` shim, this engine parses the workspace
//! into a per-crate item model ([`model::Workspace`]) with real
//! scoping — `use`-alias resolution, `#[cfg(test)]`/`#[test]`
//! exclusion, and an intra-workspace call graph — and runs two kinds of
//! rules over it:
//!
//! - [`parity`] re-derives the token rules L1–L6 from the token stream
//!   (closing the scanner's import-rename blind spot along the way);
//!   [`cross_check`] fails the lint when the two engines disagree on a
//!   shared scope, so neither can rot silently.
//! - [`l7`] (call-graph validator coverage), [`l8`] (float-ordering
//!   hygiene), and [`l9`] (per-site atomics-ordering allowlist, paired
//!   with the `loom` models) only exist here — they need item
//!   structure a substring scanner cannot recover.
//!
//! Allowlist markers are shared with the token scanner through the
//! common [`SourceModel`](crate::scan::SourceModel) instances, so a
//! marker used by either engine is live for staleness accounting.

pub mod callgraph;
pub mod l7;
pub mod l8;
pub mod l9;
pub mod model;
pub mod parity;

pub use model::Workspace;

use crate::rules::Finding;
use std::collections::BTreeSet;

/// Runs every AST rule over the loaded workspace.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (rel, message) in &ws.errors {
        out.push(Finding {
            rule: "ast",
            path: rel.clone(),
            line: 1,
            snippet: String::new(),
            message: format!("AST engine could not analyze this file: {message}"),
        });
    }
    for (rel, entry) in &ws.files {
        if let Some(scope) = crate::rules::scope_for(rel) {
            parity::check(entry, scope, &mut out);
        }
    }
    let graph = callgraph::CallGraph::build(ws);
    l7::check(ws, &graph, &mut out);
    l8::check(ws, &mut out);
    l9::check(ws, &mut out);
    out
}

/// Cross-checks the token scanner against the AST engine: every L1–L6
/// finding the scanner emits in a file the AST engine analyzed must be
/// reproduced at the same (rule, path, line); a miss is an engine bug
/// and fails the lint as an `xcheck` finding.
pub fn cross_check(token: &[Finding], ast: &[Finding], ws: &Workspace) -> Vec<Finding> {
    let ast_keys: BTreeSet<(&str, &str, usize)> = ast
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    let mut out = Vec::new();
    for f in token {
        if !matches!(f.rule, "L1" | "L2" | "L3" | "L4" | "L5" | "L6") {
            continue;
        }
        let Some(entry) = ws.files.get(&f.path) else {
            continue; // file outside the module tree: token scanner only
        };
        if entry.tokens.is_empty() {
            continue; // tokenize failure already reported as `ast`
        }
        if ast_keys.contains(&(f.rule, f.path.as_str(), f.line)) {
            continue;
        }
        out.push(Finding {
            rule: "xcheck",
            path: f.path.clone(),
            line: f.line,
            snippet: f.snippet.clone(),
            message: format!(
                "engine disagreement: the token scanner reports {} here but the \
                 AST engine does not — fix whichever engine is wrong before \
                 trusting either",
                f.rule
            ),
        });
    }
    out
}
