//! Intra-workspace call graph over the [`Workspace`] function table.
//!
//! Call sites are extracted from body token streams in two shapes:
//! path calls (`f(…)`, `a::b::f(…)`, `Type::f(…)`) and method calls
//! (`recv.f(…)`). Resolution is deliberately an *over-approximation*
//! suited to a reachability lint: method names resolve to every
//! workspace method with that name, path calls are narrowed by alias
//! maps (`use` renames), `crate`/`self`/`super` prefixes, crate
//! identifiers, and impl-type or module qualifiers. Extra edges can at
//! worst surface a finding that needs an allowlist marker; missing
//! edges would silently pass, so the bias is the safe direction for
//! L7's validator-coverage check.

use super::model::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use syn::{Delimiter, TokenTree};

/// One extracted call site.
#[derive(Debug)]
struct CallSite {
    /// Path segments (`["validate", "check_schedule"]`); a single
    /// segment for bare calls; the method name alone for method calls.
    segs: Vec<String>,
    /// True for `recv.name(…)`.
    method: bool,
}

/// Caller → callee adjacency over `Workspace::fns` indices.
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    pub fn build(ws: &Workspace) -> CallGraph {
        // Name indexes. Methods are keyed by bare name; free functions
        // by (crate, name) and by name for qualified cross-crate calls.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(&f.name).or_default().push(i);
            if f.impl_ty.is_some() {
                methods.entry(&f.name).or_default().push(i);
            }
        }

        let crate_idents: BTreeSet<&str> = ws.fns.iter().map(|f| f.crate_ident.as_str()).collect();

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let renames = ws
                .files
                .get(&f.rel)
                .map(|e| e.rename_map())
                .unwrap_or_default();
            let mut sites = Vec::new();
            extract_calls(&f.body, &mut sites);
            let mut out = BTreeSet::new();
            for site in sites {
                resolve(
                    ws,
                    &methods,
                    &by_name,
                    &crate_idents,
                    &renames,
                    i,
                    &site,
                    &mut out,
                );
            }
            edges[i] = out.into_iter().collect();
        }
        CallGraph { edges }
    }

    /// Every function reachable from `start` (inclusive), refusing to
    /// traverse *through* functions matching `barrier` — barrier nodes
    /// are visited but their callees are not explored.
    pub fn reachable(&self, start: usize, barrier: &dyn Fn(usize) -> bool) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            if n != start && barrier(n) {
                continue;
            }
            for &m in &self.edges[n] {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        seen
    }
}

/// Scans a token stream (recursing into groups) for call sites.
fn extract_calls(tokens: &[TokenTree], out: &mut Vec<CallSite>) {
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) => {
                extract_calls(&g.stream, out);
                i += 1;
            }
            // `.name(…)` — method call. The receiver tokens are walked
            // on their own (literals/groups recursed above).
            TokenTree::Punct(p) if p.ch == '.' => {
                if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(g))) =
                    (tokens.get(i + 1), tokens.get(i + 2))
                {
                    if g.delimiter == Delimiter::Parenthesis {
                        out.push(CallSite {
                            segs: vec![name.text.clone()],
                            method: true,
                        });
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) => {
                // Path call: Ident (:: Ident)* ( … ). Skip macro
                // invocations (`name!(…)`) and anything reached via `.`
                // (already handled above).
                let mut segs = vec![id.text.clone()];
                let mut j = i + 1;
                loop {
                    let colon2 = matches!(
                        tokens.get(j),
                        Some(TokenTree::Punct(p)) if p.ch == ':' && p.joint
                    ) && matches!(
                        tokens.get(j + 1),
                        Some(TokenTree::Punct(p)) if p.ch == ':'
                    );
                    if !colon2 {
                        break;
                    }
                    match tokens.get(j + 2) {
                        Some(TokenTree::Ident(next)) => {
                            segs.push(next.text.clone());
                            j += 3;
                        }
                        // Turbofish `::<…>`: skip to the matching `>`.
                        Some(TokenTree::Punct(p)) if p.ch == '<' => {
                            let mut depth = 0i32;
                            let mut k = j + 2;
                            while k < tokens.len() {
                                if let TokenTree::Punct(q) = &tokens[k] {
                                    if q.ch == '<' {
                                        depth += 1;
                                    } else if q.ch == '>' {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                }
                                k += 1;
                            }
                            j = k + 1;
                        }
                        _ => break,
                    }
                }
                let is_macro = matches!(tokens.get(j), Some(TokenTree::Punct(p)) if p.ch == '!');
                if !is_macro {
                    if let Some(TokenTree::Group(g)) = tokens.get(j) {
                        if g.delimiter == Delimiter::Parenthesis {
                            out.push(CallSite {
                                segs,
                                method: false,
                            });
                        }
                    }
                }
                i = j.max(i + 1);
            }
            _ => i += 1,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    ws: &Workspace,
    methods: &BTreeMap<&str, Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_idents: &BTreeSet<&str>,
    renames: &BTreeMap<&str, &[String]>,
    caller: usize,
    site: &CallSite,
    out: &mut BTreeSet<usize>,
) {
    let caller_crate = &ws.fns[caller].crate_ident;
    if site.method {
        if let Some(ids) = methods.get(site.segs[0].as_str()) {
            out.extend(ids.iter().copied());
        }
        return;
    }

    // Expand a leading `use … as alias` rename.
    let mut segs: Vec<String> = site.segs.clone();
    if let Some(target) = renames.get(segs[0].as_str()) {
        let mut expanded: Vec<String> = target.to_vec();
        expanded.extend(segs.drain(1..));
        segs = expanded;
    }

    // `crate::` / `self::` / `super::` pin the caller's crate.
    let mut same_crate_only = false;
    while matches!(
        segs.first().map(String::as_str),
        Some("crate" | "self" | "super")
    ) {
        segs.remove(0);
        same_crate_only = true;
    }
    if segs.is_empty() {
        return;
    }
    // A crate-ident qualifier (`taps_core::…`) pins that crate.
    let mut crate_pin: Option<String> = None;
    if segs.len() > 1 && crate_idents.contains(segs[0].as_str()) {
        crate_pin = Some(segs.remove(0));
    }
    let name = segs.last().cloned().unwrap_or_default();
    let quals = &segs[..segs.len() - 1];

    let Some(candidates) = by_name.get(name.as_str()) else {
        return;
    };
    for &c in candidates {
        let f = &ws.fns[c];
        if let Some(pin) = &crate_pin {
            if &f.crate_ident != pin {
                continue;
            }
        } else if same_crate_only && &f.crate_ident != caller_crate {
            continue;
        }
        match quals.last() {
            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                // Type qualifier: `Scheduler::new`.
                if f.impl_ty.as_deref() != Some(q.as_str()) {
                    continue;
                }
            }
            Some(q) => {
                // Module qualifier: `validate::check_schedule`.
                if !f.module.iter().any(|m| m == q) && !f.rel.ends_with(&format!("/{q}.rs")) {
                    continue;
                }
            }
            None => {
                // Bare call: same-crate free function.
                if f.impl_ty.is_some() || &f.crate_ident != caller_crate {
                    continue;
                }
            }
        }
        out.insert(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> Workspace {
        Workspace::from_sources(&[
            (
                "crates/core/src/lib.rs",
                "pub mod validate;\npub struct Sched;\nimpl Sched {\n    pub fn admit(&mut self) { self.commit() }\n    fn commit(&mut self) { validate::check_schedule(); helper() }\n}\nfn helper() {}\n",
            ),
            (
                "crates/core/src/validate.rs",
                "pub fn check_schedule() {}\n",
            ),
            (
                "crates/sdn/src/lib.rs",
                "use taps_core::validate::check_schedule as vcheck;\npub fn push() { vcheck() }\n",
            ),
        ])
    }

    fn id(ws: &Workspace, name: &str) -> usize {
        ws.fns_named(name).next().unwrap()
    }

    #[test]
    fn resolves_methods_modules_and_aliases() {
        let ws = ws();
        let g = CallGraph::build(&ws);
        let admit = id(&ws, "admit");
        let commit = id(&ws, "commit");
        let check = id(&ws, "check_schedule");
        let helper = id(&ws, "helper");
        let push = id(&ws, "push");

        assert!(g.edges[admit].contains(&commit), "method call");
        assert!(g.edges[commit].contains(&check), "module-qualified call");
        assert!(g.edges[commit].contains(&helper), "bare same-crate call");
        assert!(
            g.edges[push].contains(&check),
            "alias-expanded cross-crate call"
        );
    }

    #[test]
    fn reachability_stops_at_barriers() {
        let ws = ws();
        let g = CallGraph::build(&ws);
        let admit = id(&ws, "admit");
        let commit = id(&ws, "commit");
        let check = id(&ws, "check_schedule");

        let all = g.reachable(admit, &|_| false);
        assert!(all.contains(&check));

        // With commit as a barrier, its callees are not explored.
        let gated = g.reachable(admit, &|n| n == commit);
        assert!(gated.contains(&commit));
        assert!(!gated.contains(&check));
    }
}
