//! AST-side re-derivation of the token rules L1–L6.
//!
//! Works over the whole-file token stream (macro bodies and struct
//! fields included) so every finding the token scanner emits in a
//! shared scope is reproduced here — `cargo xtask lint` cross-checks
//! the two engines and fails on any disagreement. On top of parity,
//! this pass closes the scanner's rename blind spot: identifiers are
//! resolved through the file's `use … as …` map before needle
//! matching, so `use std::time::Instant as T; T::now()` is flagged both
//! at the import and at the call site, which the substring scanner
//! cannot see.

use super::model::FileEntry;
use crate::rules::{Finding, RuleScope};
use crate::scan::MarkerKind;
use std::collections::BTreeMap;
use syn::{Delimiter, TokenTree};

/// Flattened token with group boundaries kept as pseudo-tokens, so
/// sequence rules can match across nesting without recursion.
enum Flat {
    Id(String, u32),
    P(char, bool),
    Lit,
    Open(Delimiter, bool),
    Close,
}

fn flatten(tokens: &[TokenTree], out: &mut Vec<Flat>) {
    for t in tokens {
        match t {
            TokenTree::Ident(i) => out.push(Flat::Id(i.text.clone(), i.span.line)),
            TokenTree::Punct(p) => out.push(Flat::P(p.ch, p.joint)),
            TokenTree::Literal(_) => out.push(Flat::Lit),
            TokenTree::Group(g) => {
                out.push(Flat::Open(g.delimiter, g.stream.is_empty()));
                flatten(&g.stream, out);
                out.push(Flat::Close);
            }
        }
    }
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];
/// Bare identifiers banned by L4 (after alias resolution).
const L4_IDENTS: &[&str] = &[
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];
/// Import targets whose *rename or glob* evades the token scanner.
const L4_ALIAS_TARGETS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Runs the parity rules for one file under the token scanner's scope.
pub fn check(entry: &FileEntry, scope: RuleScope, out: &mut Vec<Finding>) {
    let mut flat = Vec::new();
    flatten(&entry.tokens, &mut flat);
    let renames = entry.rename_map();
    let resolved = |text: &str| -> String {
        match renames.get(text) {
            Some(path) => path.last().cloned().unwrap_or_else(|| text.to_string()),
            None => text.to_string(),
        }
    };

    // (rule, line) hits, one finding per line like the token scanner.
    let mut hits: BTreeMap<(&'static str, usize), String> = BTreeMap::new();
    let hit = |hits: &mut BTreeMap<(&'static str, usize), String>,
               rule: &'static str,
               line: u32,
               message: String| {
        let line = line as usize;
        if line == 0 || entry.source.line_is_test(line) {
            return;
        }
        hits.entry((rule, line)).or_insert(message);
    };

    for (i, t) in flat.iter().enumerate() {
        let Flat::Id(text, line) = t else { continue };
        let name = resolved(text);

        if scope.l1 && (name == "HashMap" || name == "HashSet") {
            hit(&mut hits, "L1", *line, l1_message());
        }
        if scope.l2 && text == "as" {
            if let Some(Flat::Id(ty, _)) = flat.get(i + 1) {
                if NUMERIC_TYPES.contains(&ty.as_str()) {
                    hit(&mut hits, "L2", *line, l2_message());
                }
            }
        }
        if scope.l3 {
            let dot_before = matches!(flat.get(i.wrapping_sub(1)), Some(Flat::P('.', _))) && i > 0;
            if dot_before && text == "unwrap" {
                if let Some(Flat::Open(Delimiter::Parenthesis, true)) = flat.get(i + 1) {
                    hit(&mut hits, "L3", *line, l3_message());
                }
            }
            if dot_before && text == "expect" {
                if let Some(Flat::Open(Delimiter::Parenthesis, _)) = flat.get(i + 1) {
                    hit(&mut hits, "L3", *line, l3_message());
                }
            }
            if matches!(
                text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && matches!(flat.get(i + 1), Some(Flat::P('!', _)))
            {
                hit(&mut hits, "L3", *line, l3_message());
            }
        }
        if scope.l4 {
            if L4_IDENTS.contains(&name.as_str()) {
                hit(&mut hits, "L4", *line, l4_message());
            }
            // `Instant::now` / `rand::random` path sequences.
            let path_next = matches!(flat.get(i + 1), Some(Flat::P(':', true)))
                && matches!(flat.get(i + 2), Some(Flat::P(':', _)));
            if path_next {
                if let Some(Flat::Id(next, _)) = flat.get(i + 3) {
                    if (name == "Instant" && next == "now") || (name == "rand" && next == "random")
                    {
                        hit(&mut hits, "L4", *line, l4_message());
                    }
                }
            }
        }
        if scope.l5 && text == "loop" {
            hit(&mut hits, "L5", *line, l5_message());
        }
        if scope.l6
            && matches!(
                text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && matches!(flat.get(i + 1), Some(Flat::P('!', _)))
        {
            hit(&mut hits, "L6", *line, l6_message());
        }
    }

    // Rename/glob imports of banned APIs: the scanner's blind spot.
    for u in &entry.uses {
        if u.in_test {
            continue;
        }
        let b = &u.binding;
        let last = b.path.last().map(String::as_str).unwrap_or("");
        let evades = b.is_rename() || b.glob;
        if !evades {
            continue;
        }
        if scope.l4 {
            let time_glob = b.glob && b.path == ["std", "time"];
            let rand_random =
                last == "random" && b.path.first().map(String::as_str) == Some("rand");
            let rand_glob = b.glob && b.path == ["rand"];
            if L4_ALIAS_TARGETS.contains(&last) || time_glob || rand_random || rand_glob {
                hit(
                    &mut hits,
                    "L4",
                    b.line,
                    format!(
                        "import of `{}` {} the token scanner's needle match: wall clock / \
                         ambient randomness stays banned under any name in deterministic \
                         simulation crates, or allowlist with \
                         `// lint: nondeterministic-ok(reason)`",
                        b.path.join("::"),
                        if b.glob {
                            "via glob evades"
                        } else {
                            "renamed evades"
                        },
                    ),
                );
            }
        }
        if scope.l1 {
            let coll_glob = b.glob && b.path == ["std", "collections"];
            if last == "HashMap" || last == "HashSet" || coll_glob {
                hit(
                    &mut hits,
                    "L1",
                    b.line,
                    format!(
                        "import of `{}` {} the token scanner's needle match: hash collections \
                         stay banned under any name in decision-path crates, or allowlist \
                         with `// lint: nondeterministic-ok(reason)`",
                        b.path.join("::"),
                        if b.glob {
                            "via glob evades"
                        } else {
                            "renamed evades"
                        },
                    ),
                );
            }
        }
    }

    for ((rule, line), message) in hits {
        let marker = match rule {
            "L1" | "L4" => MarkerKind::NondeterministicOk,
            "L2" => MarkerKind::CastOk,
            "L3" => MarkerKind::PanicOk,
            "L5" => MarkerKind::L5Ok,
            _ => MarkerKind::L6Ok,
        };
        if entry.source.marker_for(marker, line).is_some() {
            continue;
        }
        out.push(Finding {
            rule,
            path: entry.rel.clone(),
            line,
            snippet: entry
                .source
                .raw_lines
                .get(line - 1)
                .cloned()
                .unwrap_or_default(),
            message,
        });
    }
}

fn l1_message() -> String {
    "hash collection in a decision path: iteration order is nondeterministic; \
     use BTreeMap/BTreeSet or an explicit sort, or allowlist with \
     `// lint: nondeterministic-ok(reason)`"
        .to_string()
}

fn l2_message() -> String {
    "bare `as` numeric cast in slot-arithmetic code: use \
     `taps_timeline::slots` helpers or `try_from`, or allowlist with \
     `// lint: cast-ok(reason)`"
        .to_string()
}

fn l3_message() -> String {
    "panic path in non-test library code: propagate a Result or document \
     the invariant with `// lint: panic-ok(reason)`"
        .to_string()
}

fn l4_message() -> String {
    "wall clock / ambient randomness in a deterministic simulation crate: \
     take the seed or timestamp as an input (workloads and fault plans \
     must derive from a seeded StdRng), or allowlist with \
     `// lint: nondeterministic-ok(reason)`"
        .to_string()
}

fn l5_message() -> String {
    "indefinite `loop` in control-plane code: retries must be bounded \
     (route them through `RetryPolicy::max_attempts`), or document the \
     termination bound with `// lint: l5-ok(reason)`"
        .to_string()
}

fn l6_message() -> String {
    "ad-hoc stdout/stderr printing in library code: emit a structured \
     `taps_obs::TraceEvent` through the crate's trace sink (or return the \
     data), or allowlist with `// lint: l6-ok(reason)`"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::model::Workspace;
    use crate::rules::scope_for;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        // Derive the owning crate root so the mod-tree walk reaches `rel`.
        let root = format!(
            "{}/lib.rs",
            rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("src")
        );
        let ws = Workspace::from_sources(&[(root.as_str(), "mod x;\n"), (rel, src)]);
        let entry = &ws.files[rel];
        let mut out = Vec::new();
        check(entry, scope_for(rel).unwrap(), &mut out);
        out
    }

    #[test]
    fn rename_evasion_is_caught_at_import_and_call() {
        let src = "use std::time::Instant as T;\npub fn f() -> u64 {\n    let t = T::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        let out = findings("crates/core/src/x.rs", src);
        let l4_lines: Vec<usize> = out
            .iter()
            .filter(|f| f.rule == "L4")
            .map(|f| f.line)
            .collect();
        assert_eq!(l4_lines, vec![1, 3], "import line and call line: {out:?}");
    }

    #[test]
    fn direct_needles_match_scanner_semantics() {
        let src = "use std::collections::HashMap;\npub fn f() {\n    let m: HashMap<u64, u64> = HashMap::new();\n    let _ = m;\n    loop { break; }\n    println!(\"x\");\n}\n";
        let out = findings("crates/sdn/src/x.rs", src);
        let mut rules: Vec<(&str, usize)> = out.iter().map(|f| (f.rule, f.line)).collect();
        rules.sort();
        assert_eq!(
            rules,
            vec![("L1", 1), ("L1", 3), ("L5", 5), ("L6", 6)],
            "{out:?}"
        );
    }

    #[test]
    fn markers_and_test_regions_suppress() {
        let src = "pub fn f() {\n    // lint: panic-ok(checked above)\n    None::<u64>.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u64>.unwrap(); }\n}\n";
        let out = findings("crates/core/src/x.rs", src);
        assert!(out.iter().all(|f| f.rule != "L3"), "{out:?}");
    }
}
