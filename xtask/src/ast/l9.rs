//! L9 — per-site atomic memory-ordering allowlist.
//!
//! The workspace has exactly two lock-free paths: the wait-free
//! observability ring (`crates/obs/src/ring.rs`) and the parallel
//! candidate-evaluation pruning bound (`crates/core/src/alloc.rs`).
//! Every `Ordering::X` use in those files must carry a
//! `// lint: l9-ok(X: why)` marker on the same line or the line above,
//! whose justification *names the ordering it defends*: the reason must
//! start with `<Ordering>:` for one of the orderings at the site and
//! mention every ordering used on the line, so weakening `Acquire` to
//! `Relaxed` makes the stale justification visible in review instead of
//! silently surviving. The paired `loom` models (`--features loom`)
//! check the claims the justifications make.

use super::model::Workspace;
use crate::rules::Finding;
use crate::scan::MarkerKind;
use std::collections::BTreeMap;
use syn::TokenTree;

/// Files under the per-site ordering allowlist.
const SCOPE_FILES: &[&str] = &["crates/obs/src/ring.rs", "crates/core/src/alloc.rs"];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for rel in SCOPE_FILES {
        let Some(entry) = ws.files.get(*rel) else {
            continue;
        };
        // line → orderings used on it, in source order.
        let mut sites: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        collect_orderings(&entry.tokens, &mut sites);
        for (line, orderings) in sites {
            if entry.source.line_is_test(line) {
                continue;
            }
            let listed = orderings.join("/");
            let Some(marker) = entry.source.marker_for(MarkerKind::L9Ok, line) else {
                out.push(Finding {
                    rule: "L9",
                    path: rel.to_string(),
                    line,
                    snippet: entry
                        .source
                        .raw_lines
                        .get(line - 1)
                        .cloned()
                        .unwrap_or_default(),
                    message: format!(
                        "undocumented atomic ordering `Ordering::{listed}`: every ordering \
                         on this lock-free path needs `// lint: l9-ok({}: why)` naming the \
                         ordering and justifying it (the loom model checks the claim)",
                        orderings[0],
                    ),
                });
                continue;
            };
            let starts_ok = orderings
                .iter()
                .any(|o| marker.reason.starts_with(&format!("{o}:")));
            let mentions_all = orderings.iter().all(|o| marker.reason.contains(o.as_str()));
            if !starts_ok || !mentions_all {
                out.push(Finding {
                    rule: "L9",
                    path: rel.to_string(),
                    line,
                    snippet: entry
                        .source
                        .raw_lines
                        .get(line - 1)
                        .cloned()
                        .unwrap_or_default(),
                    message: format!(
                        "l9-ok justification `{}` does not match the ordering(s) \
                         `{listed}` used here: start the reason with `<Ordering>:` and \
                         name every ordering on the line, so the justification goes \
                         stale when the ordering changes",
                        marker.reason,
                    ),
                });
            }
        }
    }
}

fn collect_orderings(tokens: &[TokenTree], sites: &mut BTreeMap<usize, Vec<String>>) {
    for (i, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Group(g) => collect_orderings(&g.stream, sites),
            TokenTree::Ident(id) if id.text == "Ordering" => {
                let path = matches!(
                    tokens.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.ch == ':' && p.joint
                ) && matches!(
                    tokens.get(i + 2),
                    Some(TokenTree::Punct(p)) if p.ch == ':'
                );
                if !path {
                    continue;
                }
                if let Some(TokenTree::Ident(ord)) = tokens.get(i + 3) {
                    if ORDERINGS.contains(&ord.text.as_str()) {
                        sites
                            .entry(ord.span.line as usize)
                            .or_default()
                            .push(ord.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l9(ring_src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[
            ("crates/obs/src/lib.rs", "pub mod ring;\n"),
            ("crates/obs/src/ring.rs", ring_src),
        ]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn undocumented_ordering_is_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn bump(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let out = l9(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].rule, out[0].line), ("L9", 3));
        assert!(out[0].message.contains("Relaxed"));
    }

    #[test]
    fn named_justification_passes_and_mismatch_fails() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn bump(a: &AtomicU64) {\n    // lint: l9-ok(Relaxed: counter is a monotonic hint, no data depends on it)\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(l9(src).is_empty(), "{:?}", l9(src));

        // Justification names the wrong ordering: stale, must be flagged.
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn bump(a: &AtomicU64) {\n    // lint: l9-ok(Acquire: pairs with the marker store)\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let out = l9(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("does not match"));
    }

    #[test]
    fn multi_ordering_lines_need_every_name() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn cas(a: &AtomicU64) {\n    // lint: l9-ok(AcqRel: RMW publishes and observes; failure load is Acquire)\n    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}\n";
        assert!(l9(src).is_empty(), "{:?}", l9(src));
    }
}
