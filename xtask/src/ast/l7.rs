//! L7 — validator coverage over the call graph.
//!
//! Every **public entry point** in `taps-core`/`taps-sdn` whose call
//! paths can mutate link occupancy (an [`IntervalSet`] mutator invoked
//! on a `self`-rooted receiver: `insert_set`, `remove_set`,
//! `insert_range`, `remove_range`) must also reach a **validate
//! gate** — a function that invokes `check_schedule`/`check_occupancy`.
//! Validation in this workspace is post-hoc: `Scheduler::commit` and
//! `Controller::commit` check the *whole* allocation batch against the
//! invariants after the engine staged its occupancy mutations and
//! before the schedule is exposed (routes installed, grants sent). The
//! gate is therefore a sibling of the mutation on the call tree, not
//! its dominator — what the rule enforces is that an entry which
//! mutates occupancy has a validation step *somewhere* downstream; an
//! entry with none at all is flagged at its `fn` line. Entries that
//! legitimately sit below the validation boundary (the allocation-layer
//! primitives every gated caller wraps, pure-removal rollback paths)
//! carry a `// lint: l7-ok(reason)` marker on the `fn` line or the
//! line above.
//!
//! [`IntervalSet`]: ../../../crates/timeline/src/lib.rs

use super::callgraph::CallGraph;
use super::model::Workspace;
use crate::rules::Finding;
use crate::scan::MarkerKind;
use std::collections::BTreeSet;
use syn::{Delimiter, TokenTree};

/// IntervalSet occupancy mutators tracked by the rule.
const MUTATORS: &[&str] = &["insert_set", "remove_set", "insert_range", "remove_range"];
/// Idents whose presence in a body makes that function a validate gate.
const GATE_CALLS: &[&str] = &["check_schedule", "check_occupancy"];
/// Crates whose public surface the rule covers.
const SCOPE_CRATES: &[&str] = &["taps_core", "taps_sdn"];

pub fn check(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    let n = ws.fns.len();
    let mut is_mutator = vec![false; n];
    let mut is_gate = vec![false; n];
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        is_mutator[i] = body_mutates_self(&f.body);
        is_gate[i] =
            SCOPE_CRATES.contains(&f.crate_ident.as_str()) && body_mentions(&f.body, GATE_CALLS);
    }
    // Name-based method resolution over-approximates: a std-collection
    // call like `vec.drain(..)` in core resolves to every workspace
    // method named `drain`, including ones in crates *above* core in the
    // dependency graph. Core/sdn cannot actually call upward, so edges
    // into out-of-scope crates are artifacts — refuse to traverse
    // through them (and never count their bodies as gates), else a
    // higher-level crate could silently legitimize an ungated entry.
    let out_of_scope = |n: usize| !SCOPE_CRATES.contains(&ws.fns[n].crate_ident.as_str());

    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test || !f.is_pub || !SCOPE_CRATES.contains(&f.crate_ident.as_str()) {
            continue;
        }
        if is_gate[i] {
            continue;
        }
        let reach = graph.reachable(i, &out_of_scope);
        // Post-hoc validation: a gate anywhere downstream covers the
        // entry (commit validates the full batch before exposure).
        if reach.iter().any(|&nid| is_gate[nid]) {
            continue;
        }
        let ungated: BTreeSet<usize> = reach.iter().copied().filter(|&m| is_mutator[m]).collect();
        let Some(&first) = ungated.iter().next() else {
            continue;
        };
        let line = f.line as usize;
        if let Some(entry) = ws.files.get(&f.rel) {
            if entry.source.marker_for(MarkerKind::L7Ok, line).is_some() {
                continue;
            }
            out.push(Finding {
                rule: "L7",
                path: f.rel.clone(),
                line,
                snippet: entry
                    .source
                    .raw_lines
                    .get(line.saturating_sub(1))
                    .cloned()
                    .unwrap_or_default(),
                message: format!(
                    "public entry point `{}` reaches timeline mutator `{}` \
                     ({}:{}) with no validate gate (`check_schedule`/`check_occupancy`) \
                     anywhere downstream: route the mutation through a gated commit, \
                     or allowlist with `// lint: l7-ok(reason)`",
                    f.qualified(),
                    ws.fns[first].qualified(),
                    ws.fns[first].rel,
                    ws.fns[first].line,
                ),
            });
        }
    }
}

/// True when the body contains `self.….<mutator>(…)` — the receiver
/// chain (fields, index groups, `?`) must root at `self`, so building
/// a *local* occupancy set (as `validate.rs` itself does) stays clean.
fn body_mutates_self(tokens: &[TokenTree]) -> bool {
    fn scan(tokens: &[TokenTree]) -> bool {
        for (i, t) in tokens.iter().enumerate() {
            if let TokenTree::Group(g) = t {
                if scan(&g.stream) {
                    return true;
                }
            }
            let TokenTree::Punct(p) = t else { continue };
            if p.ch != '.' {
                continue;
            }
            let Some(TokenTree::Ident(name)) = tokens.get(i + 1) else {
                continue;
            };
            if !MUTATORS.contains(&name.text.as_str()) {
                continue;
            }
            let Some(TokenTree::Group(g)) = tokens.get(i + 2) else {
                continue;
            };
            if g.delimiter != Delimiter::Parenthesis {
                continue;
            }
            if receiver_root_is_self(tokens, i) {
                return true;
            }
        }
        false
    }
    scan(tokens)
}

/// Walks the receiver chain leftward from the `.` at `dot` and reports
/// whether it roots at the `self` keyword.
fn receiver_root_is_self(tokens: &[TokenTree], dot: usize) -> bool {
    let mut j = dot;
    loop {
        if j == 0 {
            return false;
        }
        j -= 1;
        match &tokens[j] {
            // Index/call group in the chain: `self.occupancy[l.idx()]`.
            TokenTree::Group(_) => continue,
            TokenTree::Punct(p) if p.ch == '?' => continue,
            TokenTree::Ident(id) => {
                let chained = j > 0 && matches!(&tokens[j - 1], TokenTree::Punct(p) if p.ch == '.');
                if chained {
                    j -= 1; // step over the `.` and keep walking left
                    continue;
                }
                return id.text == "self";
            }
            _ => return false,
        }
    }
}

fn body_mentions(tokens: &[TokenTree], names: &[&str]) -> bool {
    tokens.iter().any(|t| match t {
        TokenTree::Ident(i) => names.contains(&i.text.as_str()),
        TokenTree::Group(g) => body_mentions(&g.stream, names),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::callgraph::CallGraph;

    fn l7(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/lib.rs", src)]);
        let graph = CallGraph::build(&ws);
        let mut out = Vec::new();
        check(&ws, &graph, &mut out);
        out
    }

    const GATED: &str = "pub struct S { occ: u64 }\nimpl S {\n    pub fn admit(&mut self) { self.commit() }\n    fn commit(&mut self) {\n        check_schedule();\n        self.occ.insert_set(1);\n    }\n}\nfn check_schedule() {}\n";

    #[test]
    fn gated_mutation_passes() {
        assert!(l7(GATED).is_empty(), "{:?}", l7(GATED));
    }

    #[test]
    fn posthoc_sibling_gate_covers_the_entry() {
        // The workspace's actual shape: the entry stages mutations via
        // the engine, then validates the whole batch in a sibling
        // commit call before exposing it.
        let src = "pub struct S { occ: u64 }\nimpl S {\n    pub fn admit(&mut self) {\n        self.stage();\n        self.commit();\n    }\n    fn stage(&mut self) { self.occ.insert_set(1); }\n    fn commit(&mut self) { check_schedule(); }\n}\nfn check_schedule() {}\n";
        assert!(l7(src).is_empty(), "{:?}", l7(src));
    }

    #[test]
    fn bypass_is_flagged_at_the_entry() {
        let src = "pub struct S { occ: u64 }\nimpl S {\n    pub fn sneak(&mut self) { self.occ.insert_set(1); }\n}\n";
        let out = l7(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "L7");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("S::sneak"));
    }

    #[test]
    fn local_receivers_and_markers_pass() {
        let src = "pub fn rebuild(sets: &mut [u64]) {\n    sets[0].insert_set(1);\n}\n";
        assert!(
            l7(src).is_empty(),
            "local receiver is not an occupancy mutation"
        );

        let src = "pub struct S { occ: u64 }\nimpl S {\n    // lint: l7-ok(rollback path restores a previously validated state)\n    pub fn rollback(&mut self) { self.occ.remove_set(1); }\n}\n";
        assert!(l7(src).is_empty(), "{:?}", l7(src));
    }
}
