//! `cargo xtask bench-smoke` — the admission-latency regression gate.
//!
//! Runs `bench_admission` with a tiny configuration in release mode and
//! fails if the fast or delta engine is *slower* than the paper-naive
//! legacy pass (`speedup_p50 < 1.0`) at any benchmarked fat-tree size,
//! or if any run's schedule diverged from the legacy schedule. The
//! thresholds are deliberately loose — real speedups are an order of
//! magnitude, so 1.0x only trips on a genuine hot-path regression (the
//! PR 5 obs regression was 0.30x), never on CI machine noise.

use std::path::Path;
use std::process::Command;

/// One gate violation, human-readable.
pub struct Failure {
    /// What went wrong (includes the offending k and value).
    pub what: String,
}

/// One per-size summary row for reporting.
pub struct Row {
    /// Fat-tree parameter.
    pub k: u64,
    /// Fast-engine p50 speedup over legacy.
    pub speedup_p50: f64,
    /// Delta-engine p50 speedup over legacy.
    pub speedup_p50_delta: f64,
}

/// Runs the smoke benchmark in `root` and checks the gate. Returns the
/// summary rows and every violation (empty = green).
pub fn run(root: &Path) -> (Vec<Row>, Vec<Failure>) {
    let mut failures = Vec::new();
    let out_dir = root.join("target").join("bench-smoke");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return (
            Vec::new(),
            vec![Failure {
                what: format!("cannot create {}: {e}", out_dir.display()),
            }],
        );
    }
    let out = out_dir.join("BENCH_admission.json");
    let metrics_out = out_dir.join("METRICS_admission.json");
    // Tiny config: two sizes, a dozen timed arrivals, small window —
    // enough signal for an order-of-magnitude gate, ~seconds of runtime.
    let status = Command::new("cargo")
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-p",
            "taps-bench",
            "--bin",
            "bench_admission",
            "--",
            "--ks",
            "8,16",
            "--arrivals",
            "12",
            "--window",
            "6",
            "--flows",
            "4",
            "--out",
        ])
        .arg(&out)
        .arg("--metrics-out")
        .arg(&metrics_out)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            return (
                Vec::new(),
                vec![Failure {
                    what: format!("bench_admission exited with {s} (schedule divergence aborts)"),
                }],
            );
        }
        Err(e) => {
            return (
                Vec::new(),
                vec![Failure {
                    what: format!("cannot spawn cargo: {e}"),
                }],
            );
        }
    }
    let text = match std::fs::read_to_string(&out) {
        Ok(t) => t,
        Err(e) => {
            return (
                Vec::new(),
                vec![Failure {
                    what: format!("cannot read {}: {e}", out.display()),
                }],
            );
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            return (
                Vec::new(),
                vec![Failure {
                    what: format!("cannot parse {}: {e:?}", out.display()),
                }],
            );
        }
    };
    let rows = check(&doc, &mut failures);
    if rows.is_empty() {
        failures.push(Failure {
            what: "bench report contains no result rows".into(),
        });
    }
    (rows, failures)
}

/// The gate itself, separated from process plumbing for unit testing:
/// every result row must report `speedup_p50 >= 1.0` for both engines
/// and `schedules_identical: true`.
pub fn check(doc: &serde_json::Value, failures: &mut Vec<Failure>) -> Vec<Row> {
    let mut rows = Vec::new();
    let results = doc.get("results").and_then(|r| r.as_array()).unwrap_or(&[]);
    for row in results {
        let k = row.get("k").and_then(|v| v.as_u64()).unwrap_or(0);
        let mut speedup = |field: &str| -> f64 {
            match row.get(field).and_then(|v| v.as_f64()) {
                Some(s) => {
                    if s < 1.0 {
                        failures.push(Failure {
                            what: format!("k={k}: {field} {s:.2} < 1.0 (hot path regressed)"),
                        });
                    }
                    s
                }
                None => {
                    failures.push(Failure {
                        what: format!("k={k}: missing {field}"),
                    });
                    0.0
                }
            }
        };
        let speedup_p50 = speedup("speedup_p50");
        let speedup_p50_delta = speedup("speedup_p50_delta");
        if row.get("schedules_identical").and_then(|v| v.as_bool()) != Some(true) {
            failures.push(Failure {
                what: format!("k={k}: schedules_identical is not true"),
            });
        }
        rows.push(Row {
            k,
            speedup_p50,
            speedup_p50_delta,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: f64, delta: f64, identical: bool) -> serde_json::Value {
        serde_json::Value::Object(vec![(
            "results".into(),
            serde_json::Value::Array(vec![serde_json::Value::Object(vec![
                ("k".into(), serde_json::Value::UInt(8)),
                ("speedup_p50".into(), serde_json::Value::Float(speedup)),
                ("speedup_p50_delta".into(), serde_json::Value::Float(delta)),
                (
                    "schedules_identical".into(),
                    serde_json::Value::Bool(identical),
                ),
            ])]),
        )])
    }

    #[test]
    fn healthy_report_passes() {
        let mut failures = Vec::new();
        let rows = check(&doc(3.2, 12.5, true), &mut failures);
        assert_eq!(rows.len(), 1);
        assert!(failures.is_empty(), "{}", failures[0].what);
    }

    #[test]
    fn regressed_fast_path_fails() {
        let mut failures = Vec::new();
        check(&doc(0.30, 12.5, true), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("speedup_p50 0.30"));
    }

    #[test]
    fn regressed_delta_path_fails() {
        let mut failures = Vec::new();
        check(&doc(3.2, 0.9, true), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("speedup_p50_delta"));
    }

    #[test]
    fn diverged_schedule_fails() {
        let mut failures = Vec::new();
        check(&doc(3.2, 12.5, false), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("schedules_identical"));
    }

    #[test]
    fn missing_rows_or_fields_fail() {
        let mut failures = Vec::new();
        let rows = check(&serde_json::Value::Object(Vec::new()), &mut failures);
        assert!(rows.is_empty());
    }
}
