//! `cargo xtask bench-smoke` — the admission-latency regression gate.
//!
//! Runs `bench_admission` with a tiny configuration in release mode and
//! fails if the fast or delta engine is *slower* than the paper-naive
//! legacy pass (`speedup_p50 < 1.0`) at any benchmarked fat-tree size,
//! or if any run's schedule diverged from the legacy schedule. The
//! thresholds are deliberately loose — real speedups are an order of
//! magnitude, so 1.0x only trips on a genuine hot-path regression (the
//! PR 5 obs regression was 0.30x), never on CI machine noise.
//!
//! The paper-scale sharded section (fat-tree k=32, 8 192 hosts) is
//! gated too: batched and sharded burst admission must not be slower
//! than the per-task sequential loop (`< 1.0` fails), the sharded
//! schedule must stay bit-identical to the monolithic pass
//! (`schedules_identical`), and a second run of the identical
//! configuration must reproduce the same `schedule_fingerprint` — the
//! shard-determinism gate (shard count and thread interleaving must
//! never leak into the schedule).

use std::path::Path;
use std::process::Command;

/// One gate violation, human-readable.
pub struct Failure {
    /// What went wrong (includes the offending k and value).
    pub what: String,
}

/// One per-size summary row for reporting.
pub struct Row {
    /// Fat-tree parameter.
    pub k: u64,
    /// Fast-engine p50 speedup over legacy.
    pub speedup_p50: f64,
    /// Delta-engine p50 speedup over legacy.
    pub speedup_p50_delta: f64,
}

/// Summary of the paper-scale sharded section for reporting.
pub struct ShardedRow {
    /// Fat-tree parameter (32 → 8 192 hosts).
    pub k: u64,
    /// Batched burst admission over per-task sequential, mean.
    pub speedup_batched: f64,
    /// Sharded burst admission over per-task sequential, mean.
    pub speedup_sharded: f64,
    /// Flow allocations committed per second of sharded wall-clock.
    pub admissions_per_sec: f64,
}

/// Smoke arguments shared by both invocations of the determinism pair:
/// the sharded section must see byte-identical parameters or the
/// fingerprint comparison would be meaningless.
const SHARDED_ARGS: [&str; 4] = ["--sharded-rounds", "4", "--sharded-batch", "32"];

fn run_bench(
    root: &Path,
    ks: &str,
    arrivals: &str,
    out: &Path,
    metrics_out: &Path,
) -> Result<serde_json::Value, Failure> {
    let status = Command::new("cargo")
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-p",
            "taps-bench",
            "--bin",
            "bench_admission",
            "--",
            "--ks",
            ks,
            "--arrivals",
            arrivals,
            "--window",
            "6",
            "--flows",
            "4",
        ])
        .args(SHARDED_ARGS)
        .arg("--out")
        .arg(out)
        .arg("--metrics-out")
        .arg(metrics_out)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            return Err(Failure {
                what: format!("bench_admission exited with {s} (schedule divergence aborts)"),
            });
        }
        Err(e) => {
            return Err(Failure {
                what: format!("cannot spawn cargo: {e}"),
            });
        }
    }
    let text = std::fs::read_to_string(out).map_err(|e| Failure {
        what: format!("cannot read {}: {e}", out.display()),
    })?;
    serde_json::from_str(&text).map_err(|e| Failure {
        what: format!("cannot parse {}: {e:?}", out.display()),
    })
}

/// Runs the smoke benchmark in `root` and checks the gate. Returns the
/// summary rows and every violation (empty = green).
pub fn run(root: &Path) -> (Vec<Row>, Option<ShardedRow>, Vec<Failure>) {
    let mut failures = Vec::new();
    let out_dir = root.join("target").join("bench-smoke");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return (
            Vec::new(),
            None,
            vec![Failure {
                what: format!("cannot create {}: {e}", out_dir.display()),
            }],
        );
    }
    // Tiny config: two sizes, a dozen timed arrivals, small window —
    // enough signal for an order-of-magnitude gate, ~seconds of runtime.
    let doc = match run_bench(
        root,
        "8,16",
        "12",
        &out_dir.join("BENCH_admission.json"),
        &out_dir.join("METRICS_admission.json"),
    ) {
        Ok(doc) => doc,
        Err(f) => return (Vec::new(), None, vec![f]),
    };
    let rows = check(&doc, &mut failures);
    if rows.is_empty() {
        failures.push(Failure {
            what: "bench report contains no result rows".into(),
        });
    }
    let sharded = check_sharded(&doc, &mut failures);
    // Shard-determinism gate: replay the identical sharded configuration
    // (the k≤16 part shrinks to a single arrival — it is not what this
    // run checks) and require the same schedule fingerprint.
    match run_bench(
        root,
        "8",
        "1",
        &out_dir.join("BENCH_admission_rerun.json"),
        &out_dir.join("METRICS_admission_rerun.json"),
    ) {
        Ok(rerun) => check_determinism(&doc, &rerun, &mut failures),
        Err(f) => failures.push(f),
    }
    (rows, sharded, failures)
}

/// The paper-scale sharded gate: both batched strategies must beat (or
/// at worst match) the per-task sequential loop, and the sharded
/// schedule must be bit-identical to the monolithic one.
pub fn check_sharded(doc: &serde_json::Value, failures: &mut Vec<Failure>) -> Option<ShardedRow> {
    let Some(row) = doc.get("sharded") else {
        failures.push(Failure {
            what: "bench report has no sharded section".into(),
        });
        return None;
    };
    let k = row.get("k").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut speedup = |field: &str| -> f64 {
        match row.get(field).and_then(|v| v.as_f64()) {
            Some(s) => {
                if s < 1.0 {
                    failures.push(Failure {
                        what: format!(
                            "sharded k={k}: {field} {s:.2} < 1.0 (batched admission regressed)"
                        ),
                    });
                }
                s
            }
            None => {
                failures.push(Failure {
                    what: format!("sharded k={k}: missing {field}"),
                });
                0.0
            }
        }
    };
    let speedup_batched = speedup("speedup_batched_vs_sequential");
    let speedup_sharded = speedup("speedup_sharded_vs_sequential");
    if row.get("schedules_identical").and_then(|v| v.as_bool()) != Some(true) {
        failures.push(Failure {
            what: format!("sharded k={k}: schedules_identical is not true"),
        });
    }
    Some(ShardedRow {
        k,
        speedup_batched,
        speedup_sharded,
        admissions_per_sec: row
            .get("admissions_per_sec_batched")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0),
    })
}

/// The shard-determinism gate: two runs of the identical sharded
/// configuration must report the same schedule fingerprint.
pub fn check_determinism(
    a: &serde_json::Value,
    b: &serde_json::Value,
    failures: &mut Vec<Failure>,
) {
    let fp = |doc: &serde_json::Value| {
        doc.get("sharded")
            .and_then(|s| s.get("schedule_fingerprint"))
            .and_then(|v| v.as_u64())
    };
    match (fp(a), fp(b)) {
        (Some(x), Some(y)) if x == y => {}
        (Some(x), Some(y)) => failures.push(Failure {
            what: format!(
                "shard determinism violated: fingerprints {x:#018x} vs {y:#018x} across reruns"
            ),
        }),
        _ => failures.push(Failure {
            what: "sharded schedule_fingerprint missing from a rerun report".into(),
        }),
    }
}

/// The gate itself, separated from process plumbing for unit testing:
/// every result row must report `speedup_p50 >= 1.0` for both engines
/// and `schedules_identical: true`.
pub fn check(doc: &serde_json::Value, failures: &mut Vec<Failure>) -> Vec<Row> {
    let mut rows = Vec::new();
    let results = doc.get("results").and_then(|r| r.as_array()).unwrap_or(&[]);
    for row in results {
        let k = row.get("k").and_then(|v| v.as_u64()).unwrap_or(0);
        let mut speedup = |field: &str| -> f64 {
            match row.get(field).and_then(|v| v.as_f64()) {
                Some(s) => {
                    if s < 1.0 {
                        failures.push(Failure {
                            what: format!("k={k}: {field} {s:.2} < 1.0 (hot path regressed)"),
                        });
                    }
                    s
                }
                None => {
                    failures.push(Failure {
                        what: format!("k={k}: missing {field}"),
                    });
                    0.0
                }
            }
        };
        let speedup_p50 = speedup("speedup_p50");
        let speedup_p50_delta = speedup("speedup_p50_delta");
        if row.get("schedules_identical").and_then(|v| v.as_bool()) != Some(true) {
            failures.push(Failure {
                what: format!("k={k}: schedules_identical is not true"),
            });
        }
        rows.push(Row {
            k,
            speedup_p50,
            speedup_p50_delta,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: f64, delta: f64, identical: bool) -> serde_json::Value {
        serde_json::Value::Object(vec![(
            "results".into(),
            serde_json::Value::Array(vec![serde_json::Value::Object(vec![
                ("k".into(), serde_json::Value::UInt(8)),
                ("speedup_p50".into(), serde_json::Value::Float(speedup)),
                ("speedup_p50_delta".into(), serde_json::Value::Float(delta)),
                (
                    "schedules_identical".into(),
                    serde_json::Value::Bool(identical),
                ),
            ])]),
        )])
    }

    #[test]
    fn healthy_report_passes() {
        let mut failures = Vec::new();
        let rows = check(&doc(3.2, 12.5, true), &mut failures);
        assert_eq!(rows.len(), 1);
        assert!(failures.is_empty(), "{}", failures[0].what);
    }

    #[test]
    fn regressed_fast_path_fails() {
        let mut failures = Vec::new();
        check(&doc(0.30, 12.5, true), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("speedup_p50 0.30"));
    }

    #[test]
    fn regressed_delta_path_fails() {
        let mut failures = Vec::new();
        check(&doc(3.2, 0.9, true), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("speedup_p50_delta"));
    }

    #[test]
    fn diverged_schedule_fails() {
        let mut failures = Vec::new();
        check(&doc(3.2, 12.5, false), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("schedules_identical"));
    }

    #[test]
    fn missing_rows_or_fields_fail() {
        let mut failures = Vec::new();
        let rows = check(&serde_json::Value::Object(Vec::new()), &mut failures);
        assert!(rows.is_empty());
    }

    fn sharded_doc(batched: f64, sharded: f64, identical: bool, fp: u64) -> serde_json::Value {
        serde_json::Value::Object(vec![(
            "sharded".into(),
            serde_json::Value::Object(vec![
                ("k".into(), serde_json::Value::UInt(32)),
                (
                    "speedup_batched_vs_sequential".into(),
                    serde_json::Value::Float(batched),
                ),
                (
                    "speedup_sharded_vs_sequential".into(),
                    serde_json::Value::Float(sharded),
                ),
                (
                    "admissions_per_sec_batched".into(),
                    serde_json::Value::Float(2.0e5),
                ),
                ("schedule_fingerprint".into(), serde_json::Value::UInt(fp)),
                (
                    "schedules_identical".into(),
                    serde_json::Value::Bool(identical),
                ),
            ]),
        )])
    }

    #[test]
    fn healthy_sharded_row_passes() {
        let mut failures = Vec::new();
        let row = check_sharded(&sharded_doc(9.5, 9.7, true, 7), &mut failures);
        assert!(failures.is_empty(), "{}", failures[0].what);
        let row = row.expect("row parsed");
        assert_eq!(row.k, 32);
        assert!(row.admissions_per_sec > 1.0e5);
    }

    #[test]
    fn regressed_sharded_speedup_fails() {
        let mut failures = Vec::new();
        check_sharded(&sharded_doc(9.5, 0.8, true, 7), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("speedup_sharded_vs_sequential"));
    }

    #[test]
    fn diverged_sharded_schedule_fails() {
        let mut failures = Vec::new();
        check_sharded(&sharded_doc(9.5, 9.7, false, 7), &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("schedules_identical"));
    }

    #[test]
    fn missing_sharded_section_fails() {
        let mut failures = Vec::new();
        assert!(check_sharded(&serde_json::Value::Object(Vec::new()), &mut failures).is_none());
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn matching_fingerprints_pass_determinism() {
        let mut failures = Vec::new();
        check_determinism(
            &sharded_doc(9.5, 9.7, true, 7),
            &sharded_doc(9.5, 9.7, true, 7),
            &mut failures,
        );
        assert!(failures.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_fails_determinism() {
        let mut failures = Vec::new();
        check_determinism(
            &sharded_doc(9.5, 9.7, true, 7),
            &sharded_doc(9.5, 9.7, true, 8),
            &mut failures,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].what.contains("shard determinism violated"));
    }
}
