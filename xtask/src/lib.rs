//! Workspace automation library: the repo-specific determinism & safety
//! lint pass behind `cargo xtask lint`, the seeded control-plane
//! chaos gate behind `cargo xtask chaos --seeds N`, and the golden-trace
//! gate behind `cargo xtask trace` ([`trace`], DESIGN.md §11).
//!
//! The lint pass runs **two engines over shared source models**: the
//! token scanner ([`rules`], L1–L6 and L10) and the `syn`-based AST engine
//! ([`ast`], L1–L9 — parity for L1–L6 plus the call-graph, float, and
//! atomics rules). Findings are cross-checked: any L1–L6 finding one
//! engine sees in a shared scope that the other misses fails the lint
//! (`xcheck`), so neither engine can rot silently. Allowlist-marker
//! staleness is accounted once, after both engines ran.
//!
//! See [`rules`] for the token rule table and DESIGN.md §"Scheduler
//! invariants & static analysis" + §13 for the rationale; [`chaos`]
//! documents the chaos gate's contract (DESIGN.md §10).

pub mod ast;
pub mod bench_smoke;
pub mod chaos;
pub mod rules;
pub mod scan;
pub mod scenarios;
pub mod trace;

use rules::Finding;
use scan::SourceModel;
use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `dir`, workspace-relative,
/// sorted for deterministic report order.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full two-engine lint pass over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let ws = ast::Workspace::load(root);
    let mut extra: Vec<(String, SourceModel)> = Vec::new();
    for rel in collect_rust_files(root)? {
        // Scoped files outside the module tree (dead files, staged
        // modules) still get the token pass and marker hygiene.
        if rules::scope_for(&rel).is_some() && !ws.files.contains_key(&rel) {
            let model = SourceModel::load(&root.join(&rel))?;
            extra.push((rel, model));
        }
    }
    Ok(lint_model(&ws, &extra))
}

/// Runs the same two-engine pass over in-memory `(rel, source)` fixtures
/// (exposed for the engine's own mutation tests).
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    let ws = ast::Workspace::from_sources(files);
    let extra: Vec<(String, SourceModel)> = files
        .iter()
        .filter(|(rel, _)| rules::scope_for(rel).is_some() && !ws.files.contains_key(*rel))
        .map(|(rel, src)| (rel.to_string(), SourceModel::parse(Path::new(rel), src)))
        .collect();
    lint_model(&ws, &extra)
}

/// Token pass + AST pass + cross-check + one hygiene sweep, over shared
/// source models so marker `used` flags accumulate across both engines.
fn lint_model(ws: &ast::Workspace, extra: &[(String, SourceModel)]) -> Vec<Finding> {
    let mut token = Vec::new();
    for (rel, entry) in &ws.files {
        if let Some(scope) = rules::scope_for(rel) {
            rules::check_file(&entry.source, scope, rel, &mut token);
        }
    }
    for (rel, model) in extra {
        if let Some(scope) = rules::scope_for(rel) {
            rules::check_file(model, scope, rel, &mut token);
        }
    }

    let ast_findings = ast::analyze(ws);
    let xcheck = ast::cross_check(&token, &ast_findings, ws);

    let mut findings = token;
    // AST findings the token engine already reported are duplicates of
    // the same defect; keep the token engine's copy.
    for f in ast_findings {
        let dup = findings
            .iter()
            .any(|t| t.rule == f.rule && t.path == f.path && t.line == f.line);
        if !dup {
            findings.push(f);
        }
    }
    findings.extend(xcheck);

    // Hygiene once, after every rule of both engines marked its
    // suppressions on the shared models.
    for (rel, entry) in &ws.files {
        if rules::scope_for(rel).is_some() {
            rules::check_marker_hygiene(&entry.source, rel, &mut findings);
        }
    }
    for (rel, model) in extra {
        if rules::scope_for(rel).is_some() {
            rules::check_marker_hygiene(model, rel, &mut findings);
        }
    }

    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    findings
}

/// Renders findings as a stable JSON array sorted by (rule, path, line,
/// message) — byte-identical across re-runs on identical sources, for
/// CI artifact diffing (`cargo xtask lint --format json`).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut rows: Vec<&Finding> = findings.iter().collect();
    rows.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    let mut out = String::from("[");
    for (i, f) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message)
        ));
    }
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
