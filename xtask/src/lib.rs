//! Workspace automation library: the repo-specific determinism & safety
//! lint pass behind `cargo xtask lint`, the seeded control-plane
//! chaos gate behind `cargo xtask chaos --seeds N`, and the golden-trace
//! gate behind `cargo xtask trace` ([`trace`], DESIGN.md §11).
//!
//! See [`rules`] for the rule table (L1–L6) and DESIGN.md §"Scheduler
//! invariants & static analysis" for the rationale; [`chaos`] documents
//! the chaos gate's contract (DESIGN.md §10).

pub mod bench_smoke;
pub mod chaos;
pub mod rules;
pub mod scan;
pub mod trace;

use rules::Finding;
use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `dir`, workspace-relative,
/// sorted for deterministic report order.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full lint pass over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_rust_files(root)? {
        rules::lint_path(root, &rel, &mut findings)?;
    }
    Ok(findings)
}
