//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses: `rngs::StdRng`, the [`Rng`] and [`SeedableRng`] traits,
//! `gen`, `gen_bool` and `gen_range` over the common integer/float range
//! types.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation instead (see
//! `compat/README.md`). The core generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong enough for the workload generators
//! and property tests in this repository. Streams differ from the real
//! `rand::rngs::StdRng` (which is ChaCha12); nothing in the workspace
//! depends on the exact stream, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generator core: the two primitive sampling operations
/// every helper is built on.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from their whole domain by
/// [`Rng::gen`] (the `Standard` distribution of the real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = ((self.end as i128).wrapping_sub(self.start as i128)) as u64;
                // Debiased multiply-shift (Lemire).
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let lo = m as u64;
                    if lo < span {
                        let t = span.wrapping_neg() % span;
                        if lo < t {
                            continue;
                        }
                    }
                    let offset = (m >> 64) as u64;
                    return ((self.start as i128) + offset as i128) as $t;
                }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if end == <$t>::MAX {
                    // Rejection-sample to avoid computing end + 1.
                    loop {
                        let v = <$t>::sample_raw(rng);
                        if v >= start {
                            return v;
                        }
                    }
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Helper for full-domain integer sampling (used by inclusive ranges that
/// span the whole type).
trait SampleRaw {
    fn sample_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_raw {
    ($($t:ty),*) => {$(
        impl SampleRaw for $t {
            fn sample_raw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

sample_raw!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Closed/half-open distinction is immaterial at f64 resolution.
        start + rng.next_f64() * (end - start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }

    /// Uniform sample from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is unreachable from SplitMix64, but keep the
            // guard for clarity.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn uniformity_is_sane() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) frac {frac}");
        // gen_range over ints covers the whole range.
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            seen[r.gen_range(0..16usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
