//! Offline drop-in replacement for the subset of the `criterion` crate API
//! this workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal harness (see `compat/README.md`). It
//! reports median / p95 per-iteration wall time per benchmark — no
//! statistical regression analysis or HTML reports. `--test` (what
//! `cargo bench -- --test` forwards, used by CI smoke runs) executes each
//! benchmark body exactly once without timing. A positional argument
//! filters benchmarks by substring, like the real harness.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with a function name and a parameter (`group/function/param`).
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id with only a parameter (`group/param`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full(&self, group: &str) -> String {
        let mut s = group.to_string();
        if let Some(f) = &self.function {
            s.push('/');
            s.push_str(f);
        }
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` the requested number of iterations and records the total
    /// elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Applies CLI arguments: `--test` enables one-shot smoke mode; a bare
    /// positional argument filters benchmark ids by substring. Unknown
    /// `--flags` (forwarded by cargo, e.g. `--bench`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with no input value.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Benchmarks `f`, passing `input` through by reference.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut body: F) {
        let full = id.full(&self.name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            body(&mut b);
            println!("test {full} ... ok");
            return;
        }

        // Calibrate: grow the iteration count until one sample takes at
        // least ~20 ms (or a single iteration already exceeds it).
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            body(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 30 {
                break;
            }
            let factor = if b.elapsed < Duration::from_micros(50) {
                100
            } else {
                let target = Duration::from_millis(25).as_nanos() as u64;
                (target / (b.elapsed.as_nanos() as u64).max(1)).clamp(2, 100)
            };
            iters = iters.saturating_mul(factor);
        }

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                body(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let p95 = per_iter_ns[(per_iter_ns.len() * 95 / 100).min(per_iter_ns.len() - 1)];
        println!(
            "{full:<52} median {:>12}  p95 {:>12}  ({} samples x {iters} iters)",
            format_ns(median),
            format_ns(p95),
            self.sample_size,
        );
    }

    /// Ends the group (report-flush point in the real harness; a no-op
    /// here, kept for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring the real
/// macro's `criterion_group!(name, fn1, fn2, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_full_paths() {
        assert_eq!(BenchmarkId::new("f", 64).full("g"), "g/f/64");
        assert_eq!(BenchmarkId::from_parameter("x").full("g"), "g/x");
        assert_eq!(BenchmarkId::from("plain").full("g"), "g/plain");
    }

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(1), &7u64, |b, &x| {
            b.iter(|| x + 1);
            runs += 1;
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("wanted".into()),
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("grp");
        g.bench_function("wanted_case", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        g.bench_function("other", |b| {
            b.iter(|| 1 + 1);
            runs += 10;
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn timing_mode_reports_without_panic() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("tiny", |b| b.iter(|| black_box(3u64) * 7));
        g.finish();
    }
}
