//! Offline self-contained replacement for the small slice of `serde_json`
//! this workspace uses: `to_string` / `to_string_pretty` / `from_str`
//! over a JSON [`Value`] tree.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation (see `compat/README.md`).
//! Unlike the real crate it does not depend on `serde`; types opt in by
//! implementing the local [`Serialize`] / [`Deserialize`] traits (build a
//! [`Value`], or read one back). Object key order is preserved as written.

#![forbid(unsafe_code)]

use std::fmt;

/// A parsed or to-be-written JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (kept exact; `u64` range).
    UInt(u64),
    /// Negative integer (kept exact; `i64` range).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Builds an error with the given message.
    pub fn msg<S: Into<String>>(s: S) -> Error {
        Error(s.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` back out of a JSON tree.
    fn from_value(v: &Value) -> Result<Self>;
}

// ---- blanket/primitive impls ------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t> {
                let n = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t> {
                let n = match *v {
                    Value::UInt(n) => i64::try_from(n).map_err(|_| Error::msg("integer out of range"))?,
                    Value::Int(n) => n,
                    _ => return Err(Error::msg("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- writing ----------------------------------------------------------

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Object(members) => {
            write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                let (k, mv) = &members[i];
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(mv, out, indent, depth + 1);
            })
        }
    }
}

fn write_seq<F: FnMut(&mut String, usize)>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: F,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's shortest round-trip formatting; integral values get a
        // trailing `.0` so they read back as the number they were.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; match serde_json's `null`.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----------------------------------------------------------

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON document"));
    }
    T::from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // workspace's ASCII identifiers.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("\\u escape not a scalar"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&0.04f64).unwrap(), "0.04");
        assert_eq!(to_string(&1e5f64).unwrap(), "100000.0");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("100000.0").unwrap(), 1e5);
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 0.0025);
        assert_eq!(from_str::<String>(r#""a\"bA""#).unwrap(), "a\"bA");
    }

    #[test]
    fn structures_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("taps".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(false)),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"name":"taps","xs":[1,2.5,null],"ok":false}"#);
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"taps\""));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn vec_and_option_impls() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), xs);
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("9").unwrap(), Some(9));
    }
}
