//! Offline drop-in replacement for the subset of the `proptest` crate API
//! this workspace uses: the [`proptest!`] macro, range / tuple / `any` /
//! `prop::collection::vec` / `prop::sample::select` strategies,
//! `prop_map`, `prop_assert*` and `prop_assume!`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation (see `compat/README.md`).
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` random
//! cases from a seed derived deterministically from the test's name, so
//! failures are reproducible run-to-run. There is no shrinking — on
//! failure the offending case index and inputs are reported by the panic
//! message of the failed assertion.

#![forbid(unsafe_code)]

use std::ops::Range;

pub use rand::rngs::StdRng;

/// Re-export used by generated code and strategy construction.
pub use rand::{Rng, RngCore};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not complete.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for primitives (`any::<u64>()` etc.).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types supported by [`any`].
pub trait ArbitraryValue {
    /// Draws a value from the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len` and elements
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        /// Strategy returned by [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Everything a `proptest!` test file needs.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test path, so each test gets a stable, distinct
    /// random stream.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the subset of the real macro used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u64..100, v in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let strategies = ($($strat,)*);
            #[allow(unused_variables, unused_mut)]
            let mut case = 0u32;
            let mut rejects = 0u32;
            while case < config.cases {
                #[allow(unused_variables)]
                let ($($arg,)*) = {
                    #[allow(unused_variables)]
                    let ($(ref $arg,)*) = strategies;
                    ($($crate::Strategy::sample($arg, &mut rng),)*)
                };
                #[allow(unreachable_code, clippy::redundant_closure_call)]
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects < config.cases.saturating_mul(64).max(1024),
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
        prop::collection::vec((0u64..100, 1u64..10), 0..8)
            .prop_map(|v| v.into_iter().map(|(a, b)| (a, a + b)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.0f64..1.0, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            let _ = z;
        }

        #[test]
        fn mapped_vec_strategy_works(pairs in arb_pairs()) {
            for (a, b) in pairs {
                prop_assert!(a < b);
            }
        }

        #[test]
        fn assume_skips(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn select_picks_member(k in prop::sample::select(vec![2usize, 4, 6])) {
            prop_assert!([2, 4, 6].contains(&k));
        }

        #[test]
        fn early_ok_return_is_supported(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }
}
