//! Offline compat shim for [`loom`](https://docs.rs/loom) — see
//! `compat/README.md` for the shim policy.
//!
//! [`model`] runs a closure under **bounded exhaustive interleaving
//! exploration**: every atomic operation, spawn, join, and yield is a
//! scheduling point; execution is serialized (exactly one model thread
//! runs at a time) and the explorer backtracks through every schedule
//! reachable within the preemption bound, re-running the closure once
//! per schedule. A panic in any execution is reported together with the
//! schedule that produced it.
//!
//! Intentional divergences from the real crate:
//!
//! - the memory model is **sequential consistency**: `Ordering`
//!   arguments are accepted but not used to generate weak-memory
//!   behaviours (the repo's `cargo xtask lint` L9 rule separately pins
//!   every ordering to a documented justification);
//! - exploration is bounded by [`Builder::preemption_bound`]
//!   (default 2, the same default practice as real loom runs in CI) and
//!   [`Builder::max_iterations`];
//! - only the APIs the workspace models use are provided:
//!   `loom::model`, `loom::thread::{spawn, yield_now}`,
//!   `loom::sync::Arc`, and `loom::sync::atomic::{AtomicBool,
//!   AtomicUsize, AtomicU64, Ordering}`.

mod sched;

pub use sched::{Builder, JoinHandle};

/// Explores all interleavings of `f` within the default bounds.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}

/// `loom::thread` — controlled thread handles.
pub mod thread {
    pub use crate::sched::{spawn, yield_now, JoinHandle};
}

/// `loom::sync` — synchronization primitives under the model.
pub mod sync {
    pub use std::sync::Arc;

    /// `loom::sync::atomic` — atomics whose every access is a
    /// scheduling point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-checked atomic: each operation yields to the
                /// scheduler first, so the explorer enumerates every
                /// placement of the access relative to other threads.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    pub fn load(&self, _order: Ordering) -> $prim {
                        crate::sched::yield_point();
                        self.inner.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $prim, _order: Ordering) {
                        crate::sched::yield_point();
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        crate::sched::yield_point();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::sched::yield_point();
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }

                    pub fn into_inner(self) -> $prim {
                        self.inner.into_inner()
                    }
                }
            };
        }

        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

        macro_rules! model_atomic_arith {
            ($name:ident, $prim:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                        crate::sched::yield_point();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_min(&self, v: $prim, _order: Ordering) -> $prim {
                        crate::sched::yield_point();
                        self.inner.fetch_min(v, Ordering::SeqCst)
                    }

                    pub fn fetch_max(&self, v: $prim, _order: Ordering) -> $prim {
                        crate::sched::yield_point();
                        self.inner.fetch_max(v, Ordering::SeqCst)
                    }
                }
            };
        }

        model_atomic_arith!(AtomicU64, u64);
        model_atomic_arith!(AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    #[test]
    fn single_thread_runs_once() {
        let runs = Arc::new(StdAtomicUsize::new(0));
        let r = Arc::clone(&runs);
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn explores_both_orders_of_two_writers() {
        // Two threads store distinct values; the final value must be
        // observed both ways across the exploration.
        let saw = Arc::new(StdAtomicUsize::new(0));
        let saw2 = Arc::clone(&saw);
        super::model(move || {
            let a = Arc::new(AtomicU64::new(0));
            let a1 = Arc::clone(&a);
            let a2 = Arc::clone(&a);
            let t1 = crate::thread::spawn(move || a1.store(1, Ordering::SeqCst));
            let t2 = crate::thread::spawn(move || a2.store(2, Ordering::SeqCst));
            t1.join().unwrap();
            t2.join().unwrap();
            match a.load(Ordering::SeqCst) {
                1 => saw2.fetch_or(1, Ordering::SeqCst),
                2 => saw2.fetch_or(2, Ordering::SeqCst),
                _ => unreachable!(),
            };
        });
        assert_eq!(saw.load(Ordering::SeqCst), 3, "both final values seen");
    }

    #[test]
    fn finds_lost_update() {
        // The classic torn read-modify-write: two threads doing
        // load-then-store of n+1 must lose an update in some schedule.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        crate::thread::spawn(move || {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "the lost-update schedule must be found");
    }

    #[test]
    fn fetch_add_never_loses_updates() {
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    crate::thread::spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn join_returns_thread_value() {
        super::model(|| {
            let h = crate::thread::spawn(|| 41u64 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
