//! The interleaving explorer behind [`crate::model`].
//!
//! One *execution* runs the model closure with every model thread
//! serialized: a thread holds the virtual CPU until it reaches a
//! scheduling point (atomic op, spawn, join, yield, exit), where the
//! scheduler picks the next thread to run. Each pick is recorded as a
//! [`Choice`]; after the execution finishes, the explorer backtracks to
//! the deepest choice with an untried alternative (within the
//! preemption bound) and replays that prefix. Exploration is therefore
//! an iterative depth-first walk of the schedule tree.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel panic payload used to unwind threads parked in an aborted
/// execution (one whose first panic was already captured).
const ABORT: &str = "loom-shim-abort";

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
struct Choice {
    /// Index into the runnable list that was chosen.
    slot: usize,
    /// How many threads were runnable.
    runnable_len: usize,
    /// Whether the yielding thread itself was still runnable (slot 0).
    current_runnable: bool,
    /// Preemptions spent strictly before this choice.
    preemptions_before: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the target thread id to finish.
    Joining(usize),
    Finished,
}

struct ExecState {
    statuses: Vec<Status>,
    active: usize,
    prefix: Vec<usize>,
    trace: Vec<Choice>,
    preemptions: usize,
    panic_msg: Option<String>,
    aborted: bool,
    finished: usize,
}

impl ExecState {
    fn all_done(&self) -> bool {
        self.finished == self.statuses.len()
    }

    /// Picks the next thread to run. `current` is the thread making the
    /// decision; it is part of the runnable list only if `Runnable`.
    fn schedule(&mut self, current: usize) {
        if self.aborted {
            return;
        }
        let mut runnable: Vec<usize> = Vec::new();
        let current_runnable = self.statuses[current] == Status::Runnable;
        if current_runnable {
            runnable.push(current);
        }
        for tid in 0..self.statuses.len() {
            if tid == current {
                continue;
            }
            match self.statuses[tid] {
                Status::Runnable => runnable.push(tid),
                Status::Joining(target) if self.statuses[target] == Status::Finished => {
                    self.statuses[tid] = Status::Runnable;
                    runnable.push(tid);
                }
                _ => {}
            }
        }
        if runnable.is_empty() {
            if !self.all_done() && self.panic_msg.is_none() {
                self.panic_msg = Some("deadlock: no runnable model thread".to_string());
                self.aborted = true;
            }
            return;
        }
        let decision_idx = self.trace.len();
        let slot = if decision_idx < self.prefix.len() {
            self.prefix[decision_idx].min(runnable.len() - 1)
        } else {
            0
        };
        let preemptive = current_runnable && slot != 0;
        self.trace.push(Choice {
            slot,
            runnable_len: runnable.len(),
            current_runnable,
            preemptions_before: self.preemptions,
        });
        if preemptive {
            self.preemptions += 1;
        }
        self.active = runnable[slot];
    }
}

struct Exec {
    state: Mutex<ExecState>,
    cond: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A scheduling point: gives the explorer the chance to switch threads
/// before the caller's next shared-memory access. No-op outside a
/// model run.
pub(crate) fn yield_point() {
    let Some((exec, tid)) = current() else {
        return;
    };
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    st.schedule(tid);
    exec.cond.notify_all();
    while !st.aborted && st.active != tid {
        st = exec.cond.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.aborted {
        drop(st);
        std::panic::panic_any(ABORT);
    }
}

/// `loom::thread::yield_now` — an explicit scheduling point.
pub fn yield_now() {
    yield_point();
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    exec: Arc<Exec>,
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (as a scheduling point) for the thread to finish and
    /// returns its result, exactly like `std::thread::JoinHandle`.
    pub fn join(self) -> std::thread::Result<T> {
        let mut st = self.exec.state.lock().unwrap_or_else(|e| e.into_inner());
        let me = current().map(|(_, tid)| tid).unwrap_or(0);
        if st.statuses[self.tid] != Status::Finished {
            st.statuses[me] = Status::Joining(self.tid);
            st.schedule(me);
            self.exec.cond.notify_all();
            while !(st.aborted || st.statuses[self.tid] == Status::Finished && st.active == me) {
                st = self.exec.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.aborted {
                drop(st);
                std::panic::panic_any(ABORT);
            }
            st.statuses[me] = Status::Runnable;
        }
        drop(st);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom shim: thread result already taken")
    }
}

/// `loom::thread::spawn` — spawns a controlled model thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = current().expect("loom shim: spawn outside a model run");
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let tid = {
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        let tid = st.statuses.len();
        st.statuses.push(Status::Runnable);
        tid
    };
    {
        let exec = Arc::clone(&exec);
        let result = Arc::clone(&result);
        std::thread::spawn(move || {
            run_controlled(exec, tid, f, result);
        });
    }
    // The spawn itself is a scheduling point: the child may be chosen
    // to run before the parent's next step.
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    st.schedule(parent);
    exec.cond.notify_all();
    while !st.aborted && st.active != parent {
        st = exec.cond.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let aborted = st.aborted;
    drop(st);
    if aborted {
        std::panic::panic_any(ABORT);
    }
    JoinHandle { exec, tid, result }
}

/// Body of every controlled OS thread: wait to be scheduled, run the
/// closure, then hand the CPU on.
fn run_controlled<T>(
    exec: Arc<Exec>,
    tid: usize,
    f: impl FnOnce() -> T,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
) {
    // Park until first scheduled.
    {
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        while !st.aborted && st.active != tid {
            st = exec.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborted {
            drop(st);
            finish(&exec, tid, None);
            return;
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let out = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let panic_msg = match &out {
        Ok(_) => None,
        Err(payload) => {
            if payload.downcast_ref::<&str>() == Some(&ABORT) {
                None
            } else {
                Some(panic_message(payload))
            }
        }
    };
    *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    finish(&exec, tid, panic_msg);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

fn finish(exec: &Arc<Exec>, tid: usize, panic_msg: Option<String>) {
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    st.statuses[tid] = Status::Finished;
    st.finished += 1;
    if let Some(msg) = panic_msg {
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
        }
        st.aborted = true;
    }
    st.schedule(tid);
    exec.cond.notify_all();
}

/// Exploration settings, mirroring `loom::model::Builder`.
pub struct Builder {
    /// Maximum number of *preemptive* context switches per execution
    /// (a switch away from a thread that could have kept running).
    /// `None` explores the full tree.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; exceeding it panics so a state
    /// explosion cannot hang CI silently.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 500_000,
        }
    }

    /// Explores all interleavings of `f` within the bounds, panicking
    /// with the failing schedule if any execution panics.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom shim: exceeded {} executions; tighten the model or lower the preemption bound",
                self.max_iterations
            );
            let (trace, panic_msg) = run_once(Arc::clone(&f), &prefix);
            if let Some(msg) = panic_msg {
                let schedule: Vec<usize> = trace.iter().map(|c| c.slot).collect();
                panic!(
                    "loom (shim): model failed on execution {iterations}\nschedule: {schedule:?}\n{msg}"
                );
            }
            match next_prefix(&trace, self.preemption_bound) {
                Some(p) => prefix = p,
                None => break,
            }
        }
    }
}

/// Finds the deepest choice with an untried alternative within the
/// preemption bound and returns the replay prefix selecting it.
fn next_prefix(trace: &[Choice], bound: Option<usize>) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let c = &trace[i];
        let next_slot = c.slot + 1;
        if next_slot >= c.runnable_len {
            continue;
        }
        // Any slot other than 0 while the current thread could continue
        // costs one preemption.
        let preemptive = c.current_runnable && next_slot != 0;
        if let Some(b) = bound {
            if c.preemptions_before + usize::from(preemptive) > b {
                continue;
            }
        }
        let mut prefix: Vec<usize> = trace[..i].iter().map(|c| c.slot).collect();
        prefix.push(next_slot);
        return Some(prefix);
    }
    None
}

/// Runs one execution of the model under the given schedule prefix.
fn run_once(f: Arc<dyn Fn() + Send + Sync>, prefix: &[usize]) -> (Vec<Choice>, Option<String>) {
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            statuses: vec![Status::Runnable],
            active: 0,
            prefix: prefix.to_vec(),
            trace: Vec::new(),
            preemptions: 0,
            panic_msg: None,
            aborted: false,
            finished: 0,
        }),
        cond: Condvar::new(),
    });
    let root: Arc<Mutex<Option<std::thread::Result<()>>>> = Arc::new(Mutex::new(None));
    let handle = {
        let exec = Arc::clone(&exec);
        let root = Arc::clone(&root);
        std::thread::spawn(move || {
            run_controlled(exec, 0, move || f(), root);
        })
    };
    // Wait for every registered model thread to finish.
    {
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        while !st.all_done() {
            if st.aborted {
                // Wake parked threads so they can unwind and finish.
                exec.cond.notify_all();
            }
            st = exec.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = handle.join();
    let st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    (st.trace.clone(), st.panic_msg.clone())
}
