//! Offline compat shim for [`syn`](https://docs.rs/syn) — see
//! `compat/README.md` for the shim policy.
//!
//! Implements the subset the workspace's AST analysis engine
//! (`xtask/src/ast/`) uses, modeled on syn *without* the `full`
//! feature: [`parse_file`] structures items, attributes, visibilities,
//! signatures, and `use` trees, while function bodies and macro
//! contents remain spanned token streams (the [`lexer`] layer stands in
//! for `proc-macro2`).
//!
//! Intentional divergences from the real crate, in the spirit of the
//! other shims:
//!
//! - types are flattened to strings instead of `syn::Type` trees;
//! - `use` trees are pre-flattened to [`UseBinding`]s;
//! - spans carry line numbers only;
//! - the parser never fails on unknown items — they become
//!   [`Item::Verbatim`].

pub mod lexer;
pub mod parse;

use std::fmt;

pub use lexer::{tokens_to_string, Delimiter, Group, Ident, Literal, Punct, Span, TokenTree};
pub use parse::{
    parse_file, parse_items, Attribute, Field, File, FnArg, Item, ItemConst, ItemEnum, ItemFn,
    ItemImpl, ItemMacro, ItemMod, ItemStruct, ItemTrait, ItemUse, Signature, UseBinding,
    Visibility,
};

/// Parse error: a message anchored to a 1-based source line.
#[derive(Debug, Clone)]
pub struct Error {
    pub line: u32,
    pub message: String,
}

impl Error {
    pub fn new(line: u32, message: impl Into<String>) -> Error {
        Error {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching syn's.
pub type Result<T> = std::result::Result<T, Error>;
