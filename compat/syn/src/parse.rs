//! Item-level parser on top of the token-tree lexer.
//!
//! Mirrors `syn` *without* the `full` feature: items, attributes,
//! visibilities, signatures, and `use` trees are structured; function
//! bodies, const initializers, and macro bodies stay as raw token
//! streams. Anything the parser does not understand becomes
//! [`Item::Verbatim`] rather than an error, so the engine degrades
//! gracefully on exotic syntax.

use crate::lexer::{tokens_to_string, Delimiter, Group, Ident, TokenTree};
use crate::Error;

/// A parsed source file.
#[derive(Debug)]
pub struct File {
    pub items: Vec<Item>,
}

/// An outer attribute `#[path(tokens)]` / `#[path = …]`.
#[derive(Clone, Debug)]
pub struct Attribute {
    /// The attribute path (`cfg`, `test`, `derive`, …).
    pub path: String,
    /// Everything inside the bracket group after the path.
    pub tokens: Vec<TokenTree>,
    pub line: u32,
}

impl Attribute {
    /// True for `#[test]`.
    pub fn is_test(&self) -> bool {
        self.path == "test" && self.tokens.is_empty()
    }

    /// True for `#[cfg(…)]` whose predicate mentions the bare `test`
    /// flag at any nesting depth (`cfg(test)`, `cfg(all(test, …))`).
    pub fn is_cfg_test(&self) -> bool {
        fn has_test(ts: &[TokenTree]) -> bool {
            ts.iter().any(|t| match t {
                TokenTree::Ident(i) => i.text == "test",
                TokenTree::Group(g) => has_test(&g.stream),
                _ => false,
            })
        }
        self.path == "cfg" && has_test(&self.tokens)
    }
}

/// Item visibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// `pub`
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`
    Restricted(String),
    /// Private.
    Inherited,
}

/// One typed function input.
#[derive(Clone, Debug)]
pub struct FnArg {
    /// Binding name when the pattern is a plain (possibly `mut`) ident;
    /// `self` receivers yield `self`; destructuring patterns yield `None`.
    pub name: Option<String>,
    /// Flattened type text (empty for `self` receivers).
    pub ty: String,
}

/// A function signature.
#[derive(Clone, Debug)]
pub struct Signature {
    pub ident: Ident,
    pub inputs: Vec<FnArg>,
    /// Flattened return type text, `None` for `()`.
    pub output: Option<String>,
}

/// `fn` item (free function, inherent/trait method, or trait default).
#[derive(Clone, Debug)]
pub struct ItemFn {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub sig: Signature,
    /// Body token stream; empty for bodiless trait method declarations.
    pub block: Vec<TokenTree>,
    pub line: u32,
}

/// `mod` item.
#[derive(Debug)]
pub struct ItemMod {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: String,
    /// `Some(items)` for inline `mod m { … }`, `None` for `mod m;`.
    pub content: Option<Vec<Item>>,
    pub line: u32,
}

/// One flattened binding introduced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseBinding {
    /// Full path segments as written (`std`, `time`, `Instant`).
    pub path: Vec<String>,
    /// The name the binding is visible under in this scope (the last
    /// segment, or the `as` rename).
    pub alias: String,
    /// True for `use path::*`.
    pub glob: bool,
    pub line: u32,
}

impl UseBinding {
    /// True when the binding renames the imported item.
    pub fn is_rename(&self) -> bool {
        !self.glob && self.path.last().map(String::as_str) != Some(self.alias.as_str())
    }
}

/// `use` item, flattened to its bindings.
#[derive(Debug)]
pub struct ItemUse {
    pub attrs: Vec<Attribute>,
    pub bindings: Vec<UseBinding>,
    pub line: u32,
}

/// `impl` block.
#[derive(Debug)]
pub struct ItemImpl {
    pub attrs: Vec<Attribute>,
    /// Main type name of the implementing type (`Foo` in `impl Foo<T>`).
    pub self_ty: String,
    /// Trait name for trait impls (`Display` in `impl fmt::Display for …`).
    pub trait_: Option<String>,
    pub items: Vec<Item>,
    pub line: u32,
}

/// One named field (of a struct).
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: String,
    pub line: u32,
}

/// `struct` item.
#[derive(Debug)]
pub struct ItemStruct {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: String,
    pub fields: Vec<Field>,
    pub line: u32,
}

/// `enum` item (variant payloads are not modeled).
#[derive(Debug)]
pub struct ItemEnum {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: String,
    pub line: u32,
}

/// `trait` item; `items` holds method declarations and defaults.
#[derive(Debug)]
pub struct ItemTrait {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: String,
    pub items: Vec<Item>,
    pub line: u32,
}

/// `const`/`static` item.
#[derive(Debug)]
pub struct ItemConst {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: String,
    pub ty: String,
    /// Initializer tokens.
    pub expr: Vec<TokenTree>,
    pub line: u32,
}

/// `macro_rules!` definition; the body stays raw tokens.
#[derive(Debug)]
pub struct ItemMacro {
    pub attrs: Vec<Attribute>,
    pub ident: Option<String>,
    pub tokens: Vec<TokenTree>,
    pub line: u32,
}

/// A parsed item.
#[derive(Debug)]
pub enum Item {
    Fn(ItemFn),
    Mod(ItemMod),
    Use(ItemUse),
    Impl(ItemImpl),
    Struct(ItemStruct),
    Enum(ItemEnum),
    Trait(ItemTrait),
    Const(ItemConst),
    Macro(ItemMacro),
    Verbatim(Vec<TokenTree>),
}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = crate::lexer::tokenize(src)?;
    let items = parse_items(&tokens);
    Ok(File { items })
}

/// Parses a token stream as a sequence of items (module or impl body).
pub fn parse_items(tokens: &[TokenTree]) -> Vec<Item> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item());
    }
    items
}

struct Parser<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self, off: usize) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek(0).map(|t| t.span().line).unwrap_or(0)
    }

    /// Consumes outer attributes; inner attributes (`#![…]`) are skipped.
    fn attrs(&mut self) -> Vec<Attribute> {
        let mut out = Vec::new();
        while let Some(t) = self.peek(0) {
            if !t.is_punct('#') {
                break;
            }
            let line = t.span().line;
            let inner = matches!(self.peek(1), Some(t) if t.is_punct('!'));
            let group_at = if inner { 2 } else { 1 };
            let Some(TokenTree::Group(g)) = self.peek(group_at) else {
                break;
            };
            if g.delimiter != Delimiter::Bracket {
                break;
            }
            let mut path = String::new();
            let mut rest = 0usize;
            for (i, t) in g.stream.iter().enumerate() {
                match t {
                    TokenTree::Ident(id) => {
                        path.push_str(&id.text);
                        rest = i + 1;
                    }
                    TokenTree::Punct(p) if p.ch == ':' => {
                        path.push(':');
                        rest = i + 1;
                    }
                    _ => break,
                }
            }
            let tokens = g.stream[rest..].to_vec();
            self.pos += group_at + 1;
            if !inner {
                out.push(Attribute { path, tokens, line });
            }
        }
        out
    }

    fn visibility(&mut self) -> Visibility {
        if matches!(self.peek(0), Some(t) if t.is_ident("pub")) {
            self.bump();
            if let Some(TokenTree::Group(g)) = self.peek(0) {
                if g.delimiter == Delimiter::Parenthesis {
                    let text = tokens_to_string(&g.stream);
                    self.bump();
                    return Visibility::Restricted(text);
                }
            }
            return Visibility::Public;
        }
        Visibility::Inherited
    }

    /// Skips a `<…>` generic parameter/argument list if one starts here.
    fn skip_generics(&mut self) {
        if !matches!(self.peek(0), Some(t) if t.is_punct('<')) {
            return;
        }
        let mut depth = 0i32;
        let mut prev_ch: Option<char> = None;
        while let Some(t) = self.bump() {
            if let TokenTree::Punct(p) = t {
                match p.ch {
                    '<' => depth += 1,
                    '>' if !matches!(prev_ch, Some('-') | Some('=')) => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
                prev_ch = Some(p.ch);
            } else {
                prev_ch = None;
            }
        }
    }

    /// Collects tokens until the next top-level brace group (exclusive)
    /// or semicolon (consumed), whichever comes first. Returns the
    /// collected tokens.
    fn until_brace_or_semi(&mut self) -> Vec<TokenTree> {
        let mut out = Vec::new();
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.ch == ';' => {
                    self.bump();
                    break;
                }
                _ => out.push(self.bump().unwrap().clone()),
            }
        }
        out
    }

    fn item(&mut self) -> Item {
        let attrs = self.attrs();
        let vis = self.visibility();
        let line = self.line();

        // Leading fn qualifiers.
        let mut look = 0usize;
        while let Some(t) = self.peek(look) {
            match t.ident() {
                Some("const") | Some("async") | Some("unsafe") | Some("extern") => {
                    // `const NAME: …` is an item, `const fn` a qualifier:
                    // treat as qualifier only when an `fn` follows within
                    // the next few tokens.
                    let next_is_fnish = (1..=2)
                        .any(|k| matches!(self.peek(look + k), Some(t) if t.is_ident("fn")))
                        || matches!(self.peek(look + 1), Some(TokenTree::Literal(_)));
                    if t.is_ident("const") && !next_is_fnish {
                        break;
                    }
                    look += 1;
                }
                _ => break,
            }
        }
        let kw = self.peek(look).and_then(|t| t.ident()).unwrap_or("");

        match kw {
            "fn" => {
                self.pos += look;
                self.item_fn(attrs, vis, line)
            }
            "mod" => self.item_mod(attrs, vis, line),
            "use" => self.item_use(attrs, line),
            "impl" => self.item_impl(attrs, line),
            "struct" => self.item_struct(attrs, vis, line),
            "enum" => self.item_enum(attrs, vis, line),
            "trait" => self.item_trait(attrs, vis, line),
            "const" | "static" => self.item_const(attrs, vis, line),
            "macro_rules" => self.item_macro(attrs, line),
            _ => {
                // Unknown item (`type`, `extern crate`, …): consume to the
                // terminating `;` or the first brace group.
                let mut out = self.until_brace_or_semi();
                if let Some(TokenTree::Group(g)) = self.peek(0) {
                    if g.delimiter == Delimiter::Brace {
                        out.push(self.bump().unwrap().clone());
                    }
                } else if out.is_empty() && !self.at_end() {
                    out.push(self.bump().unwrap().clone());
                }
                Item::Verbatim(out)
            }
        }
    }

    fn item_fn(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // fn
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.clone(),
            other => {
                return Item::Verbatim(other.cloned().into_iter().collect());
            }
        };
        self.skip_generics();
        let inputs = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis => {
                let args = parse_fn_args(g);
                self.bump();
                args
            }
            _ => Vec::new(),
        };
        // Return type: tokens between `->` and body/`;`/`where`.
        let mut output = None;
        if matches!(self.peek(0), Some(TokenTree::Punct(p)) if p.ch == '-' && p.joint)
            && matches!(self.peek(1), Some(t) if t.is_punct('>'))
        {
            self.bump();
            self.bump();
            let mut ty = Vec::new();
            let mut depth = 0i32;
            while let Some(t) = self.peek(0) {
                match t {
                    TokenTree::Group(g) if g.delimiter == Delimiter::Brace && depth == 0 => break,
                    TokenTree::Punct(p) if p.ch == ';' && depth == 0 => break,
                    TokenTree::Ident(i) if i.text == "where" && depth == 0 => break,
                    TokenTree::Punct(p) => {
                        if p.ch == '<' {
                            depth += 1;
                        } else if p.ch == '>' {
                            depth -= 1;
                        }
                        ty.push(self.bump().unwrap().clone());
                    }
                    _ => ty.push(self.bump().unwrap().clone()),
                }
            }
            output = Some(tokens_to_string(&ty));
        }
        // Where clause.
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.ch == ';' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let block = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let b = g.stream.clone();
                self.bump();
                b
            }
            _ => {
                // Bodiless declaration: consume the `;`.
                if matches!(self.peek(0), Some(t) if t.is_punct(';')) {
                    self.bump();
                }
                Vec::new()
            }
        };
        Item::Fn(ItemFn {
            attrs,
            vis,
            sig: Signature {
                ident,
                inputs,
                output,
            },
            block,
            line,
        })
    }

    fn item_mod(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // mod
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text.clone(),
            _ => String::new(),
        };
        let content = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let items = parse_items(&g.stream);
                self.bump();
                Some(items)
            }
            _ => {
                if matches!(self.peek(0), Some(t) if t.is_punct(';')) {
                    self.bump();
                }
                None
            }
        };
        Item::Mod(ItemMod {
            attrs,
            vis,
            ident,
            content,
            line,
        })
    }

    fn item_use(&mut self, attrs: Vec<Attribute>, line: u32) -> Item {
        self.bump(); // use
        let tree = self.until_brace_or_semi();
        // `use a::b::{c, d as e};` puts the brace group inside the path,
        // so until_brace_or_semi stops early only for top-level braces —
        // re-attach any trailing group.
        let mut tree = tree;
        while let Some(TokenTree::Group(g)) = self.peek(0) {
            if g.delimiter == Delimiter::Brace {
                tree.push(self.bump().unwrap().clone());
                if matches!(self.peek(0), Some(t) if t.is_punct(';')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let mut bindings = Vec::new();
        flatten_use_tree(&tree, &[], &mut bindings, line);
        Item::Use(ItemUse {
            attrs,
            bindings,
            line,
        })
    }

    fn item_impl(&mut self, attrs: Vec<Attribute>, line: u32) -> Item {
        self.bump(); // impl
        self.skip_generics();
        let header = self.until_brace_or_semi();
        let items = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let items = parse_items(&g.stream);
                self.bump();
                items
            }
            _ => Vec::new(),
        };
        // Split `Trait for Type` vs plain `Type` on a top-level `for`.
        let for_pos = header.iter().position(|t| t.is_ident("for"));
        let (trait_, ty_tokens) = match for_pos {
            Some(p) => (
                Some(last_type_ident(&header[..p])),
                header[p + 1..].to_vec(),
            ),
            None => (None, header),
        };
        Item::Impl(ItemImpl {
            attrs,
            self_ty: first_type_ident(&ty_tokens),
            trait_,
            items,
            line,
        })
    }

    fn item_struct(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // struct
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text.clone(),
            _ => String::new(),
        };
        self.skip_generics();
        let mut fields = Vec::new();
        // Tuple struct: `(T, U);` — unnamed fields, skipped. Unit: `;`.
        // Named: `{ a: T, b: U }` possibly after a where clause.
        loop {
            match self.peek(0) {
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                    parse_named_fields(&g.stream, &mut fields);
                    self.bump();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.ch == ';' => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => break,
            }
        }
        Item::Struct(ItemStruct {
            attrs,
            vis,
            ident,
            fields,
            line,
        })
    }

    fn item_enum(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // enum
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text.clone(),
            _ => String::new(),
        };
        self.skip_generics();
        // Skip to and over the variant block.
        while let Some(t) = self.peek(0) {
            let done = matches!(t, TokenTree::Group(g) if g.delimiter == Delimiter::Brace);
            self.bump();
            if done {
                break;
            }
        }
        Item::Enum(ItemEnum {
            attrs,
            vis,
            ident,
            line,
        })
    }

    fn item_trait(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // trait
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text.clone(),
            _ => String::new(),
        };
        self.skip_generics();
        self.until_brace_or_semi(); // supertraits / where clause
        let items = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let items = parse_items(&g.stream);
                self.bump();
                items
            }
            _ => Vec::new(),
        };
        Item::Trait(ItemTrait {
            attrs,
            vis,
            ident,
            items,
            line,
        })
    }

    fn item_const(&mut self, attrs: Vec<Attribute>, vis: Visibility, line: u32) -> Item {
        self.bump(); // const | static
        if matches!(self.peek(0), Some(t) if t.is_ident("mut")) {
            self.bump();
        }
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text.clone(),
            _ => String::new(),
        };
        if matches!(self.peek(0), Some(t) if t.is_punct(':')) {
            self.bump();
        }
        let mut ty = Vec::new();
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Punct(p) if p.ch == '=' && !p.joint => break,
                TokenTree::Punct(p) if p.ch == ';' => break,
                _ => ty.push(self.bump().unwrap().clone()),
            }
        }
        if matches!(self.peek(0), Some(t) if t.is_punct('=')) {
            self.bump();
        }
        let expr = self.until_brace_or_semi();
        // Initializers ending in a brace group (struct literals) —
        // consume the trailing group and the `;`.
        let mut expr = expr;
        while let Some(TokenTree::Group(g)) = self.peek(0) {
            if g.delimiter == Delimiter::Brace {
                expr.push(self.bump().unwrap().clone());
                if matches!(self.peek(0), Some(t) if t.is_punct(';')) {
                    self.bump();
                    break;
                }
            } else {
                break;
            }
        }
        Item::Const(ItemConst {
            attrs,
            vis,
            ident,
            ty: tokens_to_string(&ty),
            expr,
            line,
        })
    }

    fn item_macro(&mut self, attrs: Vec<Attribute>, line: u32) -> Item {
        self.bump(); // macro_rules
        if matches!(self.peek(0), Some(t) if t.is_punct('!')) {
            self.bump();
        }
        let ident = match self.peek(0) {
            Some(TokenTree::Ident(i)) => {
                let name = i.text.clone();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let tokens = match self.peek(0) {
            Some(TokenTree::Group(g)) => {
                let ts = g.stream.clone();
                self.bump();
                ts
            }
            _ => Vec::new(),
        };
        Item::Macro(ItemMacro {
            attrs,
            ident,
            tokens,
            line,
        })
    }
}

/// Parses `(args)` into typed inputs.
fn parse_fn_args(g: &Group) -> Vec<FnArg> {
    let mut out = Vec::new();
    // Split on top-level commas.
    let mut current: Vec<&TokenTree> = Vec::new();
    let mut depth = 0i32;
    let mut prev_ch: Option<char> = None;
    let flush = |current: &mut Vec<&TokenTree>, out: &mut Vec<FnArg>| {
        if current.is_empty() {
            return;
        }
        out.push(parse_one_arg(current));
        current.clear();
    };
    for t in &g.stream {
        match t {
            TokenTree::Punct(p) if p.ch == '<' => {
                depth += 1;
                current.push(t);
            }
            TokenTree::Punct(p) if p.ch == '>' && !matches!(prev_ch, Some('-') | Some('=')) => {
                depth -= 1;
                current.push(t);
            }
            TokenTree::Punct(p) if p.ch == ',' && depth == 0 => {
                flush(&mut current, &mut out);
            }
            _ => current.push(t),
        }
        prev_ch = match t {
            TokenTree::Punct(p) => Some(p.ch),
            _ => None,
        };
    }
    flush(&mut current, &mut out);
    out
}

fn parse_one_arg(tokens: &[&TokenTree]) -> FnArg {
    // self receiver: any form (`self`, `&self`, `&mut self`, `mut self`).
    let colon = tokens.iter().position(|t| t.is_punct(':'));
    if colon.is_none() && tokens.iter().any(|t| t.is_ident("self")) {
        return FnArg {
            name: Some("self".to_string()),
            ty: String::new(),
        };
    }
    match colon {
        Some(c) => {
            let pat = &tokens[..c];
            let ty_tokens: Vec<TokenTree> = tokens[c + 1..].iter().map(|t| (*t).clone()).collect();
            // Plain `name` or `mut name`.
            let idents: Vec<&str> = pat.iter().filter_map(|t| t.ident()).collect();
            let name = match idents.as_slice() {
                [n] => Some((*n).to_string()),
                ["mut", n] => Some((*n).to_string()),
                _ => None,
            };
            FnArg {
                name,
                ty: tokens_to_string(&ty_tokens),
            }
        }
        None => FnArg {
            name: None,
            ty: String::new(),
        },
    }
}

/// Parses `{ a: T, b: U }` named fields (attributes and `pub` allowed).
fn parse_named_fields(tokens: &[TokenTree], out: &mut Vec<Field>) {
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes.
        while i < tokens.len() && tokens[i].is_punct('#') {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                i += 1;
            }
        }
        // Skip visibility.
        if matches!(tokens.get(i), Some(t) if t.is_ident("pub")) {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            i += 1;
            continue;
        };
        if !matches!(tokens.get(i + 1), Some(t) if t.is_punct(':')) {
            i += 1;
            continue;
        }
        // Type: up to the next top-level comma.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut prev_ch: Option<char> = None;
        let mut ty = Vec::new();
        while j < tokens.len() {
            match &tokens[j] {
                TokenTree::Punct(p) if p.ch == '<' => depth += 1,
                TokenTree::Punct(p) if p.ch == '>' && !matches!(prev_ch, Some('-') | Some('=')) => {
                    depth -= 1
                }
                TokenTree::Punct(p) if p.ch == ',' && depth == 0 => break,
                _ => {}
            }
            prev_ch = match &tokens[j] {
                TokenTree::Punct(p) => Some(p.ch),
                _ => None,
            };
            ty.push(tokens[j].clone());
            j += 1;
        }
        out.push(Field {
            name: name.text.clone(),
            ty: tokens_to_string(&ty),
            line: name.span.line,
        });
        i = j + 1;
    }
}

/// Flattens a `use` tree into bindings.
fn flatten_use_tree(tokens: &[TokenTree], prefix: &[String], out: &mut Vec<UseBinding>, line: u32) {
    let mut i = 0usize;
    let mut segs: Vec<(String, u32)> = Vec::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.text == "as" => {
                // `path as Alias`
                if let Some(TokenTree::Ident(alias)) = tokens.get(i + 1) {
                    let mut path = prefix.to_vec();
                    path.extend(segs.iter().map(|(s, _)| s.clone()));
                    out.push(UseBinding {
                        path,
                        alias: alias.text.clone(),
                        glob: false,
                        line: alias.span.line,
                    });
                    segs.clear();
                    i += 2;
                    // Skip a trailing comma if present (inside groups).
                    if matches!(tokens.get(i), Some(t) if t.is_punct(',')) {
                        i += 1;
                    }
                    continue;
                }
                i += 1;
            }
            TokenTree::Ident(id) => {
                segs.push((id.text.clone(), id.span.line));
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == ':' => {
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == '*' => {
                let mut path = prefix.to_vec();
                path.extend(segs.iter().map(|(s, _)| s.clone()));
                out.push(UseBinding {
                    path,
                    alias: String::new(),
                    glob: true,
                    line,
                });
                segs.clear();
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == ',' => {
                // End of one tree in a group: emit the plain binding.
                if let Some((last, l)) = segs.last().cloned() {
                    let mut path = prefix.to_vec();
                    path.extend(segs.iter().map(|(s, _)| s.clone()));
                    out.push(UseBinding {
                        path,
                        alias: last,
                        glob: false,
                        line: l,
                    });
                }
                segs.clear();
                i += 1;
            }
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                let mut new_prefix = prefix.to_vec();
                new_prefix.extend(segs.iter().map(|(s, _)| s.clone()));
                flatten_use_tree(&g.stream, &new_prefix, out, line);
                segs.clear();
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    if let Some((last, l)) = segs.last().cloned() {
        let mut path = prefix.to_vec();
        path.extend(segs.iter().map(|(s, _)| s.clone()));
        out.push(UseBinding {
            path,
            alias: last,
            glob: false,
            line: l,
        });
    }
}

/// First identifier in a type token sequence (skipping `&`, `dyn`, `mut`).
fn first_type_ident(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .filter_map(|t| t.ident())
        .find(|s| !matches!(*s, "dyn" | "mut" | "impl"))
        .unwrap_or("")
        .to_string()
}

/// Last identifier of a (possibly `a::b::C`) path, ignoring generics.
fn last_type_ident(tokens: &[TokenTree]) -> String {
    let mut depth = 0i32;
    let mut prev_ch: Option<char> = None;
    let mut last = "";
    for t in tokens {
        match t {
            TokenTree::Punct(p) => {
                if p.ch == '<' {
                    depth += 1;
                } else if p.ch == '>' && !matches!(prev_ch, Some('-') | Some('=')) {
                    depth -= 1;
                }
                prev_ch = Some(p.ch);
            }
            TokenTree::Ident(i) if depth == 0 => {
                last = &i.text;
                prev_ch = None;
            }
            _ => prev_ch = None,
        }
    }
    last.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> File {
        parse_file(src).expect("parse")
    }

    #[test]
    fn parses_fn_with_sig() {
        let f = file("pub fn foo(&mut self, x: u64, (a, b): (f64, f64)) -> Option<f64> { x }");
        let Item::Fn(func) = &f.items[0] else {
            panic!("not a fn: {:?}", f.items[0]);
        };
        assert_eq!(func.sig.ident.text, "foo");
        assert_eq!(func.vis, Visibility::Public);
        assert_eq!(func.sig.inputs.len(), 3);
        assert_eq!(func.sig.inputs[0].name.as_deref(), Some("self"));
        assert_eq!(func.sig.inputs[1].name.as_deref(), Some("x"));
        assert_eq!(func.sig.inputs[1].ty, "u64");
        assert!(func.sig.inputs[2].name.is_none());
        assert_eq!(func.sig.output.as_deref(), Some("Option<f64>"));
        assert!(!func.block.is_empty());
    }

    #[test]
    fn parses_use_aliases_and_groups() {
        let f = file("use std::time::Instant as T;\nuse std::collections::{BTreeMap, HashMap as Map};\nuse a::b::*;");
        let Item::Use(u1) = &f.items[0] else { panic!() };
        assert_eq!(u1.bindings.len(), 1);
        assert_eq!(u1.bindings[0].path, vec!["std", "time", "Instant"]);
        assert_eq!(u1.bindings[0].alias, "T");
        assert!(u1.bindings[0].is_rename());

        let Item::Use(u2) = &f.items[1] else { panic!() };
        assert_eq!(u2.bindings.len(), 2);
        assert_eq!(u2.bindings[0].alias, "BTreeMap");
        assert!(!u2.bindings[0].is_rename());
        assert_eq!(u2.bindings[1].path, vec!["std", "collections", "HashMap"]);
        assert_eq!(u2.bindings[1].alias, "Map");

        let Item::Use(u3) = &f.items[2] else { panic!() };
        assert!(u3.bindings[0].glob);
        assert_eq!(u3.bindings[0].path, vec!["a", "b"]);
    }

    #[test]
    fn parses_impl_blocks() {
        let f = file("impl fmt::Display for Finding { fn fmt(&self) -> u64 { 1 } }\nimpl<T> Engine<T> { pub fn run(&mut self) {} }");
        let Item::Impl(i1) = &f.items[0] else {
            panic!()
        };
        assert_eq!(i1.trait_.as_deref(), Some("Display"));
        assert_eq!(i1.self_ty, "Finding");
        assert_eq!(i1.items.len(), 1);

        let Item::Impl(i2) = &f.items[1] else {
            panic!()
        };
        assert_eq!(i2.trait_, None);
        assert_eq!(i2.self_ty, "Engine");
        let Item::Fn(m) = &i2.items[0] else { panic!() };
        assert_eq!(m.sig.ident.text, "run");
        assert_eq!(m.vis, Visibility::Public);
    }

    #[test]
    fn parses_struct_fields_and_mods() {
        let f = file(
            "pub struct S { pub completion: f64, count: u64, slices: Vec<f64> }\nmod inner;\n#[cfg(test)]\nmod tests { fn t() {} }",
        );
        let Item::Struct(s) = &f.items[0] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "completion");
        assert_eq!(s.fields[0].ty, "f64");
        assert_eq!(s.fields[2].ty, "Vec<f64>");

        let Item::Mod(m1) = &f.items[1] else { panic!() };
        assert!(m1.content.is_none());
        let Item::Mod(m2) = &f.items[2] else { panic!() };
        assert!(m2.attrs[0].is_cfg_test());
        assert_eq!(m2.content.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn cfg_attrs_classified() {
        let f = file("#[cfg(test)]\nfn a() {}\n#[test]\nfn b() {}\n#[cfg(all(test, feature = \"x\"))]\nfn c() {}\n#[cfg(feature = \"obs\")]\nfn d() {}");
        let test_flags: Vec<(bool, bool)> = f
            .items
            .iter()
            .map(|i| {
                let Item::Fn(func) = i else { panic!() };
                (
                    func.attrs.iter().any(|a| a.is_cfg_test()),
                    func.attrs.iter().any(|a| a.is_test()),
                )
            })
            .collect();
        assert_eq!(
            test_flags,
            vec![(true, false), (false, true), (true, false), (false, false)]
        );
    }

    #[test]
    fn const_and_macro_items() {
        let f = file("pub const EPS: f64 = 1e-9;\nmacro_rules! obs_event { ($($x:tt)*) => {} }\nstatic N: u64 = 3;");
        let Item::Const(c) = &f.items[0] else {
            panic!()
        };
        assert_eq!(c.ident, "EPS");
        assert_eq!(c.ty, "f64");
        let Item::Macro(m) = &f.items[1] else {
            panic!()
        };
        assert_eq!(m.ident.as_deref(), Some("obs_event"));
        let Item::Const(s) = &f.items[2] else {
            panic!()
        };
        assert_eq!(s.ident, "N");
    }

    #[test]
    fn const_fn_is_a_fn() {
        let f = file("pub const fn slots(x: u64) -> u64 { x }");
        assert!(matches!(&f.items[0], Item::Fn(func) if func.sig.ident.text == "slots"));
    }

    #[test]
    fn trait_items_with_defaults() {
        let f = file("pub trait Sink { fn emit(&self, t: f64); fn flush(&self) -> f64 { 0.0 } }");
        let Item::Trait(tr) = &f.items[0] else {
            panic!()
        };
        assert_eq!(tr.items.len(), 2);
        let Item::Fn(emit) = &tr.items[0] else {
            panic!()
        };
        assert!(emit.block.is_empty());
        let Item::Fn(flush) = &tr.items[1] else {
            panic!()
        };
        assert!(!flush.block.is_empty());
        assert_eq!(flush.sig.output.as_deref(), Some("f64"));
    }
}
