//! Spanned token-tree lexer (the `proc-macro2` layer of the shim).
//!
//! Produces a tree of [`TokenTree`]s — identifiers (keywords included),
//! single-character puncts with `joint` adjacency flags, literals, and
//! delimiter groups — each carrying the 1-based source line it starts
//! on. Comments and lifetimes are dropped; string/char/raw-string
//! literals are kept as single opaque tokens so downstream analysis can
//! never match inside them.

use crate::Error;

/// Source position of a token: the 1-based line it starts on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    pub line: u32,
}

/// Group delimiter kind (proc-macro2 naming).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delimiter {
    Parenthesis,
    Brace,
    Bracket,
}

/// An identifier or keyword.
#[derive(Clone, Debug)]
pub struct Ident {
    pub text: String,
    pub span: Span,
}

/// A single punctuation character. `joint` is true when the next token
/// is another punct with no whitespace in between (so `==`, `::`, `->`,
/// `..` can be reassembled).
#[derive(Clone, Debug)]
pub struct Punct {
    pub ch: char,
    pub joint: bool,
    pub span: Span,
}

/// A literal: numbers keep their text (including any suffix); string,
/// byte-string, raw-string, and char literals are flattened to `"…"` /
/// `'…'` placeholders with the payload removed.
#[derive(Clone, Debug)]
pub struct Literal {
    pub text: String,
    /// True for floating-point numeric literals (`1.0`, `2e-3`, `1f64`).
    pub is_float: bool,
    pub span: Span,
}

/// A delimited group and its sub-stream.
#[derive(Clone, Debug)]
pub struct Group {
    pub delimiter: Delimiter,
    pub stream: Vec<TokenTree>,
    pub span: Span,
}

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum TokenTree {
    Ident(Ident),
    Punct(Punct),
    Literal(Literal),
    Group(Group),
}

impl TokenTree {
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Ident(t) => t.span,
            TokenTree::Punct(t) => t.span,
            TokenTree::Literal(t) => t.span,
            TokenTree::Group(t) => t.span,
        }
    }

    /// The identifier text, if this is an ident.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(t) => Some(&t.text),
            _ => None,
        }
    }

    /// True when this is the identifier `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        self.ident() == Some(kw)
    }

    /// The punct character, if this is a punct.
    pub fn punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(t) => Some(t.ch),
            _ => None,
        }
    }

    /// True when this is the punct `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.punct() == Some(ch)
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            _ => None,
        }
    }
}

/// Renders a token slice back to readable (space-joined) text; used for
/// type strings in signatures and diagnostics.
pub fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            TokenTree::Ident(i) => {
                if !out.is_empty() && !out.ends_with(':') && !out.ends_with('<') {
                    out.push(' ');
                }
                out.push_str(&i.text);
            }
            TokenTree::Punct(p) => out.push(p.ch),
            TokenTree::Literal(l) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&l.text);
            }
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter {
                    Delimiter::Parenthesis => ('(', ')'),
                    Delimiter::Brace => ('{', '}'),
                    Delimiter::Bracket => ('[', ']'),
                };
                out.push(open);
                out.push_str(&tokens_to_string(&g.stream));
                out.push(close);
            }
        }
    }
    out
}

/// Tokenizes Rust source into a tree of spanned tokens.
pub fn tokenize(src: &str) -> Result<Vec<TokenTree>, Error> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut flat = Vec::new();
    while let Some(t) = lx.next_raw()? {
        flat.push(t);
    }
    let mut pos = 0usize;
    let out = build_stream(&flat, &mut pos, None)?;
    if pos != flat.len() {
        if let RawTok::Close(_, span) = &flat[pos] {
            return Err(Error::new(span.line, "unbalanced closing delimiter"));
        }
    }
    Ok(out)
}

enum RawTok {
    Open(Delimiter, Span),
    Close(Delimiter, Span),
    Tok(TokenTree),
}

fn build_stream(
    flat: &[RawTok],
    pos: &mut usize,
    closing: Option<(Delimiter, Span)>,
) -> Result<Vec<TokenTree>, Error> {
    let mut out = Vec::new();
    while *pos < flat.len() {
        match &flat[*pos] {
            RawTok::Tok(t) => {
                out.push(t.clone());
                *pos += 1;
            }
            RawTok::Open(d, span) => {
                let (d, span) = (*d, *span);
                *pos += 1;
                let stream = build_stream(flat, pos, Some((d, span)))?;
                out.push(TokenTree::Group(Group {
                    delimiter: d,
                    stream,
                    span,
                }));
            }
            RawTok::Close(d, span) => {
                return match closing {
                    Some((want, _)) if want == *d => {
                        *pos += 1;
                        Ok(out)
                    }
                    _ => Err(Error::new(span.line, "mismatched closing delimiter")),
                };
            }
        }
    }
    match closing {
        Some((_, span)) => Err(Error::new(span.line, "unclosed delimiter")),
        None => Ok(out),
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn next_raw(&mut self) -> Result<Option<RawTok>, Error> {
        self.skip_trivia()?;
        let span = Span { line: self.line };
        let Some(c) = self.peek(0) else {
            return Ok(None);
        };

        // Raw strings and byte strings before plain idents: `r"`, `r#"`,
        // `br"`, `b"`, `b'`.
        if (c == 'r' || c == 'b') && self.is_raw_or_byte_literal() {
            return self.lex_prefixed_literal(span).map(Some);
        }

        if c.is_alphabetic() || c == '_' {
            return Ok(Some(RawTok::Tok(TokenTree::Ident(self.lex_ident(span)))));
        }
        if c == '#' && self.peek(1) == Some('#') {
            // `r#ident` is handled below via the 'r' path; a bare `##`
            // only appears in macro_rules bodies — lex as two puncts.
        }
        if c.is_ascii_digit() {
            return Ok(Some(RawTok::Tok(TokenTree::Literal(self.lex_number(span)))));
        }
        match c {
            '"' => {
                self.lex_string()?;
                return Ok(Some(RawTok::Tok(TokenTree::Literal(Literal {
                    text: "\"…\"".to_string(),
                    is_float: false,
                    span,
                }))));
            }
            '\'' => return self.lex_quote(span),
            '(' => {
                self.bump();
                return Ok(Some(RawTok::Open(Delimiter::Parenthesis, span)));
            }
            ')' => {
                self.bump();
                return Ok(Some(RawTok::Close(Delimiter::Parenthesis, span)));
            }
            '{' => {
                self.bump();
                return Ok(Some(RawTok::Open(Delimiter::Brace, span)));
            }
            '}' => {
                self.bump();
                return Ok(Some(RawTok::Close(Delimiter::Brace, span)));
            }
            '[' => {
                self.bump();
                return Ok(Some(RawTok::Open(Delimiter::Bracket, span)));
            }
            ']' => {
                self.bump();
                return Ok(Some(RawTok::Close(Delimiter::Bracket, span)));
            }
            _ => {}
        }
        // Punct: single char, joint when glued to another punct char.
        self.bump();
        const PUNCTS: &str = "+-*/%^!&|=<>.,;:#$?@~";
        let joint = matches!(self.peek(0), Some(n) if PUNCTS.contains(n));
        Ok(Some(RawTok::Tok(TokenTree::Punct(Punct {
            ch: c,
            joint,
            span,
        }))))
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some(c), _) if c.is_whitespace() => {
                    self.bump();
                }
                (Some('/'), Some('/')) => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some('/'), Some('*')) => {
                    let start = self.line;
                    let mut depth = 0usize;
                    loop {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                self.bump();
                                self.bump();
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// True when position `i` starts `r"`, `r#"`, `r#ident`, `br"`,
    /// `b"`, or `b'` (as opposed to a plain ident starting with r/b).
    fn is_raw_or_byte_literal(&self) -> bool {
        let mut j = 0usize;
        if self.peek(0) == Some('b') {
            j += 1;
            if self.peek(j) == Some('\'') || self.peek(j) == Some('"') {
                return true;
            }
        }
        if self.peek(j) != Some('r') {
            return false;
        }
        j += 1;
        while self.peek(j) == Some('#') {
            j += 1;
            // `r#ident` (raw identifier): a `#` then ident-start then no
            // quote — handled by the caller as a literal only when a
            // quote follows the hashes.
        }
        self.peek(j) == Some('"')
            || (self.peek(0) == Some('r')
                && self.peek(1) == Some('#')
                && matches!(self.peek(2), Some(c) if c.is_alphabetic() || c == '_'))
    }

    fn lex_prefixed_literal(&mut self, span: Span) -> Result<RawTok, Error> {
        // Raw identifier `r#ident` lexes as a plain ident.
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && matches!(self.peek(2), Some(c) if c.is_alphabetic() || c == '_')
        {
            self.bump();
            self.bump();
            return Ok(RawTok::Tok(TokenTree::Ident(self.lex_ident(span))));
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            self.lex_quote(span)?;
            return Ok(RawTok::Tok(TokenTree::Literal(Literal {
                text: "b'…'".to_string(),
                is_float: false,
                span,
            })));
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('"') {
            self.bump();
            self.lex_string()?;
            return Ok(RawTok::Tok(TokenTree::Literal(Literal {
                text: "b\"…\"".to_string(),
                is_float: false,
                span,
            })));
        }
        // Raw string: [b] r #* " … " #*
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('"') => {
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(Error::new(span.line, "unterminated raw string")),
            }
        }
        Ok(RawTok::Tok(TokenTree::Literal(Literal {
            text: "r\"…\"".to_string(),
            is_float: false,
            span,
        })))
    }

    fn lex_ident(&mut self, span: Span) -> Ident {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ident { text, span }
    }

    fn lex_number(&mut self, span: Span) -> Literal {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('b') | Some('o') | Some('X'))
        {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fractional part only when `.` is followed by a digit, so
            // `0..n` and `1.method()` lex the dot as a punct.
            if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap());
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                    is_float = true;
                    text.push(self.bump().unwrap());
                    if sign {
                        text.push(self.bump().unwrap());
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
        Literal {
            text,
            is_float,
            span,
        }
    }

    fn lex_string(&mut self) -> Result<(), Error> {
        let start = self.line;
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(Error::new(start, "unterminated string literal")),
            }
        }
    }

    /// A `'`: char literal or lifetime. Lifetimes and labels are dropped
    /// (no token emitted → caller re-polls), char literals become opaque
    /// literal tokens.
    fn lex_quote(&mut self, span: Span) -> Result<Option<RawTok>, Error> {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return self.next_raw();
        }
        // Char literal: '\...' or 'x' (including punct chars like '{').
        self.bump(); // opening '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                self.bump();
                if c == '\'' {
                    break;
                }
            }
        } else {
            self.bump(); // the char
            if self.peek(0) == Some('\'') {
                self.bump();
            }
        }
        Ok(Some(RawTok::Tok(TokenTree::Literal(Literal {
            text: "'…'".to_string(),
            is_float: false,
            span,
        }))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_groups() {
        let ts = tokenize("fn foo(x: u64) -> u64 { x + 1 }").unwrap();
        assert!(ts[0].is_ident("fn"));
        assert!(ts[1].is_ident("foo"));
        let g = ts[2].group().unwrap();
        assert_eq!(g.delimiter, Delimiter::Parenthesis);
        assert!(g.stream[0].is_ident("x"));
    }

    #[test]
    fn floats_vs_ranges() {
        let ts = tokenize("a(1.5, 0..4, 2e-3, 7f64, 1.0e3, 0x1F)").unwrap();
        let g = ts[1].group().unwrap();
        let lits: Vec<(&str, bool)> = g
            .stream
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some((l.text.as_str(), l.is_float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lits,
            vec![
                ("1.5", true),
                ("0", false),
                ("4", false),
                ("2e-3", true),
                ("7f64", true),
                ("1.0e3", true),
                ("0x1F", false),
            ]
        );
    }

    #[test]
    fn strings_comments_lifetimes_are_opaque_or_dropped() {
        let ts = tokenize(
            "let s = \"HashMap inside\"; // HashMap comment\nlet r = r#\"raw unwrap()\"#; let c = '{'; let l: &'static str = s;",
        )
        .unwrap();
        let text = tokens_to_string(&ts);
        assert!(!text.contains("HashMap"), "{text}");
        assert!(!text.contains("unwrap"), "{text}");
        // `'static` lexes as a lifetime, not a char literal, so the
        // tokens after it (the `str` type and `= s`) must survive.
        assert!(ts.iter().any(|t| t.is_ident("str")), "{text}");
        assert!(ts.iter().any(|t| t.is_ident("s")), "{text}");
        // Lines survive: the second statement starts on line 2.
        let r_tok = ts.iter().find(|t| t.is_ident("r")).unwrap();
        assert_eq!(r_tok.span().line, 2);
    }

    #[test]
    fn joint_flags_mark_compound_puncts() {
        let ts = tokenize("a == b .. c :: d -> e").unwrap();
        let puncts: Vec<(char, bool)> = ts
            .iter()
            .filter_map(|t| match t {
                TokenTree::Punct(p) => Some((p.ch, p.joint)),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                ('=', true),
                ('=', false),
                ('.', true),
                ('.', false),
                (':', true),
                (':', false),
                ('-', true),
                ('>', false),
            ]
        );
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(tokenize("fn f( {").is_err());
        assert!(tokenize("fn f) (").is_err());
    }
}
